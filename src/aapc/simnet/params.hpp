// Simulation parameters for the switched-Ethernet model.
//
// Defaults approximate the paper's testbed: 100 Mbps duplex links,
// Linux/TCP software stack on ~2.8 GHz P4 nodes. The fluid model
// separates (a) per-message CPU/software overhead, (b) per-hop switch
// latency, and (c) payload bandwidth after protocol overhead (Ethernet +
// IP + TCP headers consume ~6% of the raw wire rate at MTU-size frames;
// we fold stack inefficiency in as well).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/units.hpp"

namespace aapc::simnet {

/// A scheduled change of one physical link's raw capacity (both
/// directions): the injectable form of a link fault — degradation,
/// down (0 bytes/sec), or restoration. Consumed by
/// FluidNetwork::schedule_capacity_change, usually via
/// faults::compile().
struct LinkCapacityEvent {
  SimTime when = 0;
  std::int32_t link = -1;
  double bandwidth_bytes_per_sec = 0;
};

struct NetworkParams {
  /// Raw link bandwidth, both directions independently (duplex).
  double link_bandwidth_bytes_per_sec = mbps_to_bytes_per_sec(100.0);

  /// Heterogeneous links: per-physical-link raw bandwidth overrides
  /// (link id, bytes/sec), e.g. gigabit switch trunks over 100 Mbps
  /// access links. Links not listed use link_bandwidth_bytes_per_sec.
  /// (The paper assumes uniform bandwidth; §3's peak formula and the
  /// scheduler's optimality argument are stated for that case — with
  /// overrides the schedule stays contention-free but the phase count
  /// is only optimal for the uniform model.)
  std::vector<std::pair<std::int32_t, double>> link_bandwidth_overrides;

  /// Raw bandwidth of a specific physical link. O(overrides) — fine for
  /// one-off queries; anything per-link-per-event must go through
  /// link_capacities() and index the resulting vector instead.
  double link_bandwidth(std::int32_t link) const {
    for (const auto& [id, bandwidth] : link_bandwidth_overrides) {
      if (id == link) return bandwidth;
    }
    return link_bandwidth_bytes_per_sec;
  }

  /// Dense per-link raw capacities with the overrides applied:
  /// O(links + overrides) once, O(1) per query thereafter. This is the
  /// vector FluidNetwork snapshots at construction and the faults layer
  /// mutates at runtime (time-varying capacities).
  std::vector<double> link_capacities(std::int32_t link_count) const {
    std::vector<double> capacities(static_cast<std::size_t>(link_count),
                                   link_bandwidth_bytes_per_sec);
    for (const auto& [id, bandwidth] : link_bandwidth_overrides) {
      AAPC_REQUIRE(id >= 0 && id < link_count,
                   "bandwidth override for nonexistent link " << id);
      capacities[static_cast<std::size_t>(id)] = bandwidth;
    }
    return capacities;
  }

  /// Fraction of the raw bandwidth available to payload once Ethernet,
  /// IP, and TCP framing plus stack inefficiencies are accounted for.
  double protocol_efficiency = 0.93;

  /// End-host duplex efficiency: a machine sending and receiving at the
  /// same time cannot drive both directions at full wire speed
  /// (NIC/PCI/stack limits on the paper's P4-class nodes). The combined
  /// send+receive payload rate of one machine is capped at
  ///   2 * effective_bandwidth() * duplex_efficiency.
  /// A machine moving data in only one direction is unaffected. The
  /// mild 0.95 default matches the per-phase trunk times of Figs. 7-8,
  /// where senders usually also receive yet sustain ~90% wire speed.
  double duplex_efficiency = 0.95;

  /// Switch fabric capacity, in units of effective link bandwidth: one
  /// switch can forward at most switch_fabric_links * effective
  /// link rates of traffic simultaneously. The paper's unmanaged
  /// 100 Mbps edge switches cannot sustain all 24 ports both ways at
  /// wire speed; with every node sending and receiving in every phase
  /// (Fig. 6, 24 concurrent flows through one switch) the fabric, not
  /// the links, is what limits per-phase time. 18 links' worth
  /// reproduces Fig. 6's ~70%-of-wire per-phase rate while leaving the
  /// 8-machine switches of Figs. 7-8 unconstrained.
  double switch_fabric_links = 18.0;

  /// Sender-side CPU time consumed by posting one send (syscall, copy
  /// into socket buffer, protocol work). Serializes sends of one rank.
  SimTime send_overhead = microseconds(60.0);

  /// Receiver-side CPU time consumed by posting one receive.
  SimTime recv_overhead = microseconds(15.0);

  /// Store-and-forward latency per switch traversal, applied once per
  /// hop on delivery (latency, not bandwidth).
  SimTime per_hop_latency = microseconds(25.0);

  /// Messages at or below this size take the small-message path.
  Bytes small_message_threshold = 256;

  /// Extra delivery latency for small messages (synchronization tokens):
  /// the end-to-end cost of a tiny TCP send on the paper's era stack —
  /// kernel wakeups, Nagle/delayed-ACK interactions, interrupt
  /// coalescing — which is far above the wire time of a few bytes.
  /// Calibrated against the per-phase overhead implied by Fig. 6's
  /// 8-16 KB rows (the regime where the paper's routine loses to the
  /// unsynchronized baselines).
  SimTime small_message_extra_latency = milliseconds(0.8);

  /// Latency of one barrier operation when an algorithm uses barriers
  /// between phases (§5 discusses why that is expensive without special
  /// hardware; LAM's software barrier over TCP costs ~one round trip per
  /// tree level, lumped here).
  SimTime barrier_latency = microseconds(400.0);

  // ---- contention losses ----
  //
  // An ideal fluid network with pure max-min sharing keeps every link
  // fully utilized no matter how many flows pile onto it — under that
  // model, unscheduled AAPC would finish as fast as the scheduled one.
  // Real switched Ethernet under TCP does not behave that way: output
  // buffers overflow, packets drop, TCP backs off and retransmits, and
  // goodput falls below wire speed. The effect is strongest at end
  // nodes (the classic many-to-one "incast" collapse on the receiving
  // NIC port) and milder but real on inter-switch trunks carrying many
  // flows. We model it by shrinking a directed edge's usable capacity
  // as a function of the number k of concurrent flows on it:
  //
  //   eta(k) = max(floor, 1 / (1 + beta * (k - 1)))
  //
  // with separate (beta, floor) for machine-attached edges and
  // switch-switch trunks. beta_node is calibrated so 23-way incast
  // yields ~42% goodput (LAM on the paper's 24-node switch, Fig. 6);
  // the trunk floor is calibrated so ~200 flows on a 100 Mbps trunk
  // keep ~62% goodput (LAM on topology (b), Fig. 7). eta(1) = 1 always:
  // a contention-free schedule sees full link speed, which is exactly
  // the property the paper's algorithm exploits.

  /// Per-extra-flow loss on machine-attached edges (incast).
  double node_contention_penalty = 0.062;
  /// Lower bound of machine-edge efficiency under extreme incast.
  double node_efficiency_floor = 0.30;
  /// Per-extra-flow loss on switch-switch trunk edges.
  double trunk_contention_penalty = 0.012;
  /// Lower bound of trunk efficiency under heavy multiplexing.
  double trunk_efficiency_floor = 0.66;

  /// Effective payload bandwidth of an uncontended link direction.
  double effective_bandwidth() const {
    return link_bandwidth_bytes_per_sec * protocol_efficiency;
  }

  /// Efficiency of an edge carrying `flows` concurrent flows.
  double contention_efficiency(bool machine_edge, std::int64_t flows) const {
    if (flows <= 1) return 1.0;
    const double beta =
        machine_edge ? node_contention_penalty : trunk_contention_penalty;
    const double floor =
        machine_edge ? node_efficiency_floor : trunk_efficiency_floor;
    const double eta = 1.0 / (1.0 + beta * static_cast<double>(flows - 1));
    return eta < floor ? floor : eta;
  }
};

}  // namespace aapc::simnet
