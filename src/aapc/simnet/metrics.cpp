#include "aapc/simnet/metrics.hpp"

namespace aapc::simnet {

void publish_network_stats(obs::Registry& registry, const NetworkStats& stats,
                           SimTime elapsed) {
  const char* events_help =
      "Simulation events processed by the fluid network, by kind";
  registry
      .counter("aapc_simnet_events_total", events_help,
               {{"kind", "activation"}})
      .inc(stats.flows_activated);
  registry
      .counter("aapc_simnet_events_total", events_help,
               {{"kind", "completion"}})
      .inc(stats.completed_flows);
  registry
      .counter("aapc_simnet_events_total", events_help,
               {{"kind", "capacity_change"}})
      .inc(stats.capacity_changes);
  registry
      .counter("aapc_simnet_rate_recomputations_total",
               "Max-min fair progressive-filling passes")
      .inc(stats.rate_recomputations);
  registry
      .counter("aapc_simnet_flows_canceled_total",
               "Flows canceled before completion (watchdog reposts)")
      .inc(stats.canceled_flows);
  registry
      .counter("aapc_simnet_pending_heap_pushes_total",
               "Flows registered with a future start time")
      .inc(stats.pending_heap_pushes);
  registry
      .gauge("aapc_simnet_busy_row_seconds",
             "Time integral of the busy capacity-row count "
             "(divide by aapc_simnet_elapsed_seconds for the mean)")
      .add(stats.busy_row_seconds);
  registry
      .gauge("aapc_simnet_elapsed_seconds",
             "Simulated seconds covered by the published stats")
      .add(elapsed);
  registry
      .gauge("aapc_simnet_max_concurrent_flows",
             "Peak simultaneously-active flows")
      .set_max(static_cast<double>(stats.max_concurrent_flows));
  registry
      .gauge("aapc_simnet_max_active_rows",
             "Peak capacity rows simultaneously carrying flows")
      .set_max(static_cast<double>(stats.max_active_rows));
}

}  // namespace aapc::simnet
