// Event-driven fluid-flow model of a switched-Ethernet tree.
//
// Every in-flight message is a *flow* over the directed edges of its
// tree path. At any instant, flow rates are the max-min fair allocation
// of each directed edge's effective bandwidth among the flows crossing
// it (progressive filling). This is the standard fluid abstraction of
// per-connection TCP bandwidth sharing on switched Ethernet and captures
// exactly the phenomenon the paper schedules around: a contention-free
// phase runs every flow at full link rate, while contending flows split
// the bottleneck.
//
// The network only advances time forward (advance_to) and reports the
// earliest flow completion (next_completion); the mpisim executor owns
// the event loop.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::simnet {

using FlowId = std::int64_t;
inline constexpr FlowId kInvalidFlow = -1;
inline constexpr SimTime kNever = std::numeric_limits<double>::infinity();

/// Aggregate transfer statistics, for utilization reporting.
struct NetworkStats {
  /// Payload bytes carried per directed edge.
  std::vector<double> edge_bytes;
  /// Number of max-min rate recomputations performed.
  std::int64_t rate_recomputations = 0;
  /// Completed flows.
  std::int64_t completed_flows = 0;
  /// Peak number of simultaneously active flows (a direct measure of
  /// how much an algorithm floods the network).
  std::int64_t max_concurrent_flows = 0;
};

class FluidNetwork {
 public:
  FluidNetwork(const topology::Topology& topo, const NetworkParams& params);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Registers a flow of `bytes` from machine node `src` to machine node
  /// `dst`, activating at `start` (>= now()). Zero-length paths (src ==
  /// dst) are invalid — model local copies outside the network.
  FlowId add_flow(topology::NodeId src, topology::NodeId dst, Bytes bytes,
                  SimTime start);

  /// Earliest among pending activations and running-flow completions;
  /// kNever when the network is idle.
  SimTime next_event_time() const;

  /// Advances simulated time, draining flow progress. `when` must be
  /// >= now(). Completions and activations at times <= `when` are
  /// processed in order; completed flow ids are appended to `completed`.
  void advance_to(SimTime when, std::vector<FlowId>& completed);

  /// Number of hops (directed edges) of a flow's path.
  std::int32_t flow_hops(FlowId flow) const;

  /// True when no flow is pending or running.
  bool idle() const { return active_count_ == 0 && pending_count_ == 0; }

  std::int64_t active_flow_count() const { return active_count_; }

  const NetworkStats& stats() const { return stats_; }

  /// Aggregate payload throughput over [0, now()]: total delivered bytes
  /// divided by elapsed time (bytes/sec).
  double aggregate_throughput() const;

 private:
  struct Flow {
    std::vector<topology::EdgeId> path;
    /// Capacity rows this flow consumes: its path edges plus the two
    /// endpoint-machine duplex rows (see recompute_rates).
    std::vector<std::int32_t> constraints;
    double remaining = 0;  // bytes
    double rate = 0;       // bytes/sec; 0 while pending
    SimTime start = 0;
    bool active = false;
    bool done = false;
  };

  void recompute_rates();

  const topology::Topology& topo_;
  NetworkParams params_;
  SimTime now_ = 0;
  std::vector<Flow> flows_;
  std::vector<FlowId> pending_;  // not yet activated, unsorted
  std::vector<FlowId> active_;
  std::int64_t active_count_ = 0;
  std::int64_t pending_count_ = 0;
  double total_delivered_bytes_ = 0;
  NetworkStats stats_;

  // Capacity rows: one per directed edge, then one duplex row per
  // machine (rank order). Scratch buffers avoid per-call allocation.
  std::int32_t row_count_ = 0;
  std::vector<double> row_capacity_;
  std::vector<std::int32_t> row_flow_count_;
  std::vector<char> flow_fixed_;
  // True for directed edges with a machine endpoint (incast model).
  std::vector<char> edge_is_machine_;
  // Static per-row base capacities (before contention scaling):
  // edge rows hold link_bandwidth(link) * protocol_efficiency; node rows
  // hold the duplex/fabric caps.
  std::vector<double> row_base_capacity_;
};

}  // namespace aapc::simnet
