// Event-driven fluid-flow model of a switched-Ethernet tree.
//
// Every in-flight message is a *flow* over the directed edges of its
// tree path. At any instant, flow rates are the max-min fair allocation
// of each directed edge's effective bandwidth among the flows crossing
// it (progressive filling). This is the standard fluid abstraction of
// per-connection TCP bandwidth sharing on switched Ethernet and captures
// exactly the phenomenon the paper schedules around: a contention-free
// phase runs every flow at full link rate, while contending flows split
// the bottleneck.
//
// The network only advances time forward (advance_to) and reports the
// earliest flow completion (next_completion); the mpisim executor owns
// the event loop.
//
// Hot-path data structures (see docs/SIMULATOR.md, "Complexity & data
// structures"): progressive filling walks only the *active-row set*
// (capacity rows with at least one flow) and discovers bottleneck flows
// through per-row flow lists; pending activations live in a min-heap;
// the earliest completion is cached once per rate recomputation.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::obs {
class Registry;
}  // namespace aapc::obs

namespace aapc::simnet {

using FlowId = std::int64_t;
inline constexpr FlowId kInvalidFlow = -1;
inline constexpr SimTime kNever = std::numeric_limits<double>::infinity();

/// Aggregate transfer statistics, for utilization reporting.
struct NetworkStats {
  /// Payload bytes carried per directed edge.
  std::vector<double> edge_bytes;
  /// Number of max-min rate recomputations performed.
  std::int64_t rate_recomputations = 0;
  /// Completed flows.
  std::int64_t completed_flows = 0;
  /// Peak number of simultaneously active flows (a direct measure of
  /// how much an algorithm floods the network).
  std::int64_t max_concurrent_flows = 0;
  /// Flows that entered the pending-activation heap (added with a
  /// future start time rather than activating immediately).
  std::int64_t pending_heap_pushes = 0;
  /// Link-capacity changes applied (immediate + scheduled fault events).
  std::int64_t capacity_changes = 0;
  /// Flows canceled before completion (executor watchdog retries).
  std::int64_t canceled_flows = 0;
  /// High-water mark of the active-row set: the most capacity rows that
  /// simultaneously carried at least one flow. Progressive filling is
  /// linear in this, not in the topology size.
  std::int64_t max_active_rows = 0;
  /// Flows that activated (began moving bytes), immediately or from the
  /// pending heap. completed + canceled <= activated.
  std::int64_t flows_activated = 0;
  /// Integral over time of the active-row count (sum of dt * |active
  /// rows| per drain step, O(1) per event). Divided by elapsed time it
  /// is the mean number of simultaneously busy capacity rows — a
  /// one-number congestion measure of the whole run.
  double busy_row_seconds = 0;
};

class FluidNetwork {
 public:
  FluidNetwork(const topology::Topology& topo, const NetworkParams& params);

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Registers a flow of `bytes` from machine node `src` to machine node
  /// `dst`, activating at `start` (>= now()). Zero-length paths (src ==
  /// dst) are invalid — model local copies outside the network.
  FlowId add_flow(topology::NodeId src, topology::NodeId dst, Bytes bytes,
                  SimTime start);

  /// Earliest among pending activations and running-flow completions;
  /// kNever when the network is idle.
  SimTime next_event_time() const;

  /// Advances simulated time, draining flow progress. `when` must be
  /// >= now(). Completions and activations at times <= `when` are
  /// processed in order; completed flow ids are appended to `completed`.
  void advance_to(SimTime when, std::vector<FlowId>& completed);

  /// Number of hops (directed edges) of a flow's path.
  std::int32_t flow_hops(FlowId flow) const;

  /// Allocated rate (bytes/sec) of a flow under the current max-min
  /// allocation; 0 for pending, canceled, or completed flows. A rate of
  /// 0 on an *active* flow means it is stuck behind a down link.
  double flow_rate(FlowId flow) const;

  /// Bytes a flow still has to move: full size while pending, 0 once
  /// completed or canceled.
  double flow_remaining(FlowId flow) const;

  // ---- time-varying link capacities (fault injection) ----

  /// Raw capacity (bytes/sec, pre protocol efficiency) of a physical
  /// link right now.
  double link_capacity(topology::LinkId link) const;

  /// Immediately sets a physical link's raw capacity, both directions
  /// (0 = link down: flows crossing it keep their place but run at rate
  /// 0 until the link recovers or they are canceled). Machine duplex
  /// caps derived from the link are updated as well. Rates are
  /// recomputed lazily, exactly like a flow activation.
  void set_link_capacity(topology::LinkId link, double bytes_per_sec);

  /// Schedules set_link_capacity(link, bytes_per_sec) at `when` >=
  /// now(). Scheduled changes are simulation events: advance_to applies
  /// them in (time, registration order), after completions and
  /// activations at the same instant, and next_event_time() sees them.
  /// A network with no scheduled changes behaves bit-identically to one
  /// built before this API existed.
  void schedule_capacity_change(SimTime when, topology::LinkId link,
                                double bytes_per_sec);

  /// Cancels a flow: a pending flow is dropped; an active flow is
  /// detached with the bytes it already moved credited to its path
  /// edges. Returns false (no-op) when the flow already completed or
  /// was already canceled. Used by the executor's transfer watchdog to
  /// repost timed-out transfers.
  bool cancel_flow(FlowId flow);

  /// True when no flow is pending or running.
  bool idle() const { return active_count_ == 0 && pending_count_ == 0; }

  std::int64_t active_flow_count() const { return active_count_; }

  const NetworkStats& stats() const { return stats_; }

  /// Exports this network's counters into `registry` under the
  /// aapc_simnet_* series (docs/OBSERVABILITY.md): the NetworkStats
  /// counters via simnet/metrics.hpp plus per-directed-edge
  /// utilization over [0, now()]. Publish-time only — the hot path
  /// never touches the registry. Call once, at the end of a run;
  /// counters accumulate across networks sharing a registry.
  void publish_metrics(obs::Registry& registry) const;

  /// Aggregate payload throughput over [0, now()]: total delivered bytes
  /// divided by elapsed time (bytes/sec).
  double aggregate_throughput() const;

 private:
  /// Plain-data per-flow record. The flow's tree path and constraint
  /// rows are not stored here: they are derived (allocation-free) at
  /// activation time and live in the flat arenas below only while the
  /// flow is active, so memory stays proportional to live flows.
  struct Flow {
    topology::NodeId src = -1;
    topology::NodeId dst = -1;
    /// Total bytes of the transfer. Live progress is tracked in the
    /// dense act_remaining_ array while the flow is active.
    double bytes = 0;
    SimTime start = 0;
    /// Path length (preserved after completion).
    std::int32_t hops = 0;
    /// Index in active_ while active, -1 otherwise.
    std::int64_t active_pos = -1;
    bool active = false;
    bool done = false;
    /// Canceled by cancel_flow(); pending-heap entries of canceled
    /// flows are skipped lazily at pop time.
    bool canceled = false;
  };

  /// A scheduled link-capacity change; `seq` keeps same-instant changes
  /// in registration order (deterministic).
  struct CapacityEvent {
    SimTime when = 0;
    std::int64_t seq = 0;
    topology::LinkId link = -1;
    double capacity = 0;
  };

  /// Earliest internal event: pending-heap top vs cached completion vs
  /// scheduled capacity change. Single source of truth for
  /// next_event_time() and advance_to(). Callers must ensure_rates()
  /// first so next_completion_ is fresh.
  SimTime internal_next_event() const {
    SimTime best = next_completion_;
    if (!pending_heap_.empty() && pending_heap_.front().first < best) {
      best = pending_heap_.front().first;
    }
    if (!capacity_events_.empty() && capacity_events_.front().when < best) {
      best = capacity_events_.front().when;
    }
    return best;
  }

  /// Rates are recomputed lazily: activations/completions only mark
  /// them dirty, so a burst of same-instant topology changes (e.g.
  /// registering a whole phase of flows) costs one progressive-filling
  /// pass instead of one per change. No intermediate rate is observable
  /// because no simulated time passes between the changes. Logically
  /// const: callers with const access (next_event_time) still need
  /// fresh caches.
  void ensure_rates() const {
    if (rates_dirty_) const_cast<FluidNetwork*>(this)->recompute_rates();
  }

  void activate(FlowId id);
  /// Removes an active flow from active_ / row lists and releases its
  /// per-flow path/constraint storage (long sweeps stay O(live flows)),
  /// crediting `credited_bytes` of payload to its path edges — the full
  /// message on completion, the bytes actually moved on cancellation.
  void detach_flow(FlowId id, double credited_bytes);
  /// Applies a link-capacity change now: updates link_capacity_ and the
  /// derived row base capacities (both edge directions plus any machine
  /// duplex row fed by the link) and marks rates dirty.
  void apply_capacity(topology::LinkId link, double bytes_per_sec);
  void compact_cons_pool();
  void recompute_rates();

  /// Min-heap ordering for scheduled capacity changes: earliest first,
  /// registration order among equal times.
  static bool capacity_event_after(const CapacityEvent& a,
                                   const CapacityEvent& b) {
    return a.when > b.when || (a.when == b.when && a.seq > b.seq);
  }

  const topology::Topology& topo_;
  NetworkParams params_;
  SimTime now_ = 0;
  std::vector<Flow> flows_;
  /// Min-heap of (start time, flow id) over not-yet-activated flows.
  std::vector<std::pair<SimTime, FlowId>> pending_heap_;
  std::vector<FlowId> active_;
  /// Hot per-active-flow state, parallel to active_ (structure-of-
  /// arrays): the per-event drain, completion detection, and
  /// next-completion scans touch only these two dense arrays instead of
  /// chasing Flow structs.
  std::vector<double> act_rate_;       // bytes/sec; 0 until first fill
  std::vector<double> act_remaining_;  // bytes
  /// Flat arena of the active flows' constraint rows: entry i of active_
  /// owns the pool slice [act_cons_off_[i], act_cons_off_[i] +
  /// act_cons_len_[i]). Within a slice, likely-bottleneck rows come
  /// first (order is semantically free; it only shortens the
  /// first-match bottleneck scan). The edge rows of a slice are exactly
  /// the flow's path edges.
  /// Progressive filling reads only this compact arena instead of
  /// chasing per-flow heap vectors. act_rpos_pool_ mirrors the layout
  /// with each entry's position in row_flows_[row] (O(1) detach).
  /// Slices of completed flows become garbage; both pools are compacted
  /// (in active_ order) once mostly dead, so memory stays proportional
  /// to live flows.
  std::vector<std::int32_t> act_cons_pool_;
  std::vector<std::int32_t> act_rpos_pool_;
  std::vector<std::int64_t> act_cons_off_;
  std::vector<std::int32_t> act_cons_len_;
  std::int64_t act_cons_live_ = 0;  // live entries in act_cons_pool_
  // Scratch for activation (avoid per-flow allocation).
  std::vector<topology::EdgeId> path_scratch_;
  std::vector<std::int32_t> cons_scratch_;
  std::int64_t active_count_ = 0;
  std::int64_t pending_count_ = 0;
  double total_delivered_bytes_ = 0;
  /// Earliest completion among active flows, computed once per
  /// recompute_rates(). Invariant between recomputations: rates are
  /// constant, so now + remaining/rate does not change as time advances.
  SimTime next_completion_ = kNever;
  /// True when some active flow already satisfies the absolute
  /// remaining <= kTimeEpsilon completion test (e.g. zero-byte flows),
  /// so the completion scan must run even before next_completion_.
  bool completable_now_ = false;
  bool rates_dirty_ = false;
  NetworkStats stats_;

  // Capacity rows: one per directed edge, then one duplex row per
  // machine (rank order). Flow membership per row is maintained
  // incrementally; filling touches only rows with nonzero flow count.
  std::int32_t row_count_ = 0;
  std::vector<std::int32_t> row_flow_count_;
  std::vector<std::vector<FlowId>> row_flows_;
  std::vector<std::int32_t> active_rows_;     // rows with flow count > 0
  std::vector<std::int32_t> row_active_pos_;  // index in active_rows_, -1
  // True for directed edges with a machine endpoint (incast model).
  std::vector<char> edge_is_machine_;
  // Current raw per-link capacities (params overrides applied at
  // construction; fault events mutate entries at runtime). Single O(1)
  // source of truth for every per-link bandwidth read.
  std::vector<double> link_capacity_;
  // Per-row base capacities (before contention scaling): edge rows hold
  // link_capacity_[link] * protocol_efficiency; node rows hold the
  // duplex/fabric caps. Constant between capacity events.
  std::vector<double> row_base_capacity_;
  // Scheduled capacity changes, min-heap by (when, seq).
  std::vector<CapacityEvent> capacity_events_;
  std::int64_t capacity_event_seq_ = 0;
  // Scratch for progressive filling (avoid per-call allocation). Only
  // entries of active rows are meaningful.
  std::vector<double> fill_capacity_;
  std::vector<std::int32_t> fill_count_;
  std::vector<double> fill_share_;  // per-row fair share, round start
  std::vector<char> flow_fixed_;           // indexed by active_ position
  std::vector<char> flow_candidate_;       // indexed by active_ position
  std::vector<std::int64_t> candidates_;   // active_ positions, scratch
  std::vector<std::int64_t> unfixed_list_; // active_ positions, ascending
  std::vector<std::int32_t> bottleneck_rows_;  // scratch per round
};

}  // namespace aapc::simnet
