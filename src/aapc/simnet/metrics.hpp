// Publishes simnet's NetworkStats into an obs::Registry under the
// aapc_simnet_* series (docs/OBSERVABILITY.md). Publish-time only: the
// simulation hot path keeps its plain NetworkStats counters and the
// registry is touched once, at the end of a run, so metrics cost
// nothing while the event loop runs.
#pragma once

#include "aapc/common/units.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/simnet/fluid_network.hpp"

namespace aapc::simnet {

/// Adds one run's NetworkStats to `registry` (counters accumulate
/// across runs sharing a registry; high-water gauges take the max).
/// `elapsed` is the simulated duration the stats cover (network
/// now() / run completion time).
void publish_network_stats(obs::Registry& registry, const NetworkStats& stats,
                           SimTime elapsed);

}  // namespace aapc::simnet
