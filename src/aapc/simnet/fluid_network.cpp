#include "aapc/simnet/fluid_network.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "aapc/common/error.hpp"
#include "aapc/simnet/metrics.hpp"

namespace aapc::simnet {

namespace {
// Completion/activation times within this window are treated as equal so
// symmetric flows finish in one batch (fewer rate recomputations and no
// artificial ordering from rounding noise).
constexpr double kTimeEpsilon = 1e-12;

// Conservative completion prefilter: if remaining > rate * kPrefilter
// then remaining / rate > kTimeEpsilon under any rounding of the
// division (the slack is ~1e-7 relative, dwarfing the ~1e-16 rounding
// error), so the flow cannot complete and the division is skipped.
constexpr double kPrefilter = kTimeEpsilon * (1.0 + 1e-7);

// Min-heap ordering for (start time, flow id): earliest start first,
// lower flow id first among equal starts.
constexpr auto kPendingOrder =
    std::greater<std::pair<SimTime, FlowId>>{};
}  // namespace

FluidNetwork::FluidNetwork(const topology::Topology& topo,
                           const NetworkParams& params)
    : topo_(topo), params_(params) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(params.link_bandwidth_bytes_per_sec > 0, "bandwidth <= 0");
  AAPC_REQUIRE(params.protocol_efficiency > 0 &&
                   params.protocol_efficiency <= 1.0,
               "protocol efficiency must be in (0, 1]");
  stats_.edge_bytes.assign(
      static_cast<std::size_t>(topo.directed_edge_count()), 0.0);
  row_count_ = topo.directed_edge_count() + topo.node_count();
  const auto rows = static_cast<std::size_t>(row_count_);
  row_flow_count_.assign(rows, 0);
  row_flows_.resize(rows);
  row_active_pos_.assign(rows, -1);
  fill_capacity_.assign(rows, 0.0);
  fill_count_.assign(rows, 0);
  fill_share_.assign(rows, 0.0);
  edge_is_machine_.resize(stats_.edge_bytes.size());
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    edge_is_machine_[static_cast<std::size_t>(e)] =
        topo.is_machine(topo.edge_source(e)) ||
        topo.is_machine(topo.edge_target(e));
  }
  // Base capacities per row (contention scaling happens per recompute).
  // All derive from the dense per-link capacity vector, the single O(1)
  // bandwidth source that capacity events mutate; switch fabric rows
  // stay tied to the nominal link rate (the backplane does not degrade
  // when an attached cable does).
  link_capacity_ = params.link_capacities(topo.link_count());
  row_base_capacity_.assign(rows, 0.0);
  const double protocol = params.protocol_efficiency;
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    row_base_capacity_[static_cast<std::size_t>(e)] =
        link_capacity_[static_cast<std::size_t>(e / 2)] * protocol;
  }
  for (topology::NodeId node = 0; node < topo.node_count(); ++node) {
    const auto row = static_cast<std::size_t>(topo.directed_edge_count() +
                                              node);
    if (topo.is_machine(node)) {
      const topology::NodeId neighbor = topo.neighbors(node).front();
      const topology::LinkId link = topo.edge_between(node, neighbor) / 2;
      row_base_capacity_[row] =
          2.0 * link_capacity_[static_cast<std::size_t>(link)] * protocol *
          params.duplex_efficiency;
    } else {
      row_base_capacity_[row] =
          params.effective_bandwidth() * params.switch_fabric_links;
    }
  }
}

FlowId FluidNetwork::add_flow(topology::NodeId src, topology::NodeId dst,
                              Bytes bytes, SimTime start) {
  AAPC_REQUIRE(start >= now_ - kTimeEpsilon,
               "flow starts in the past: " << start << " < " << now_);
  AAPC_REQUIRE(src != dst, "self flows are not network flows");
  // Validates the endpoints and the tree path up front (same failure
  // behavior as the eager seed code); the path itself is re-derived at
  // activation time, so pending flows carry no per-flow heap storage.
  topo_.path_into(src, dst, path_scratch_);
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.hops = static_cast<std::int32_t>(path_scratch_.size());
  flow.bytes = static_cast<double>(bytes);
  flow.start = std::max(start, now_);
  const FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(flow);
  if (flow.start <= now_ + kTimeEpsilon) {
    activate(id);
    rates_dirty_ = true;
  } else {
    pending_heap_.emplace_back(flow.start, id);
    std::push_heap(pending_heap_.begin(), pending_heap_.end(),
                   kPendingOrder);
    ++pending_count_;
    ++stats_.pending_heap_pushes;
  }
  return id;
}

void FluidNetwork::activate(FlowId id) {
  Flow& flow = flows_[static_cast<std::size_t>(id)];
  // Derive the path and constraint rows into scratch. Constraint order
  // is free (the at-bottleneck test is a disjunction over rows evaluated
  // at one instant, and per-row capacity updates commute), so the rows
  // most likely to be the bottleneck go first to shorten the
  // first-match scan: the endpoint machines' duplex rows, then the path
  // edges, then every switch traversed (fabric cap). Node rows are
  // indexed directed_edge_count() + node id.
  topo_.path_into(flow.src, flow.dst, path_scratch_);
  cons_scratch_.clear();
  cons_scratch_.push_back(topo_.directed_edge_count() + flow.dst);
  cons_scratch_.push_back(topo_.directed_edge_count() + flow.src);
  for (const topology::EdgeId e : path_scratch_) {
    cons_scratch_.push_back(e);
  }
  for (std::size_t i = 0; i + 1 < path_scratch_.size(); ++i) {
    cons_scratch_.push_back(topo_.directed_edge_count() +
                            topo_.edge_target(path_scratch_[i]));
  }
  flow.active = true;
  flow.active_pos = static_cast<std::int64_t>(active_.size());
  active_.push_back(id);
  act_rate_.push_back(0.0);
  act_remaining_.push_back(flow.bytes);
  const std::size_t len = cons_scratch_.size();
  const auto off = static_cast<std::int64_t>(act_cons_pool_.size());
  act_cons_off_.push_back(off);
  act_cons_len_.push_back(static_cast<std::int32_t>(len));
  act_cons_pool_.insert(act_cons_pool_.end(), cons_scratch_.begin(),
                        cons_scratch_.end());
  act_rpos_pool_.resize(act_rpos_pool_.size() + len);
  act_cons_live_ += static_cast<std::int64_t>(len);
  ++active_count_;
  stats_.max_concurrent_flows =
      std::max<std::int64_t>(stats_.max_concurrent_flows, active_count_);
  for (std::size_t k = 0; k < len; ++k) {
    const auto row = static_cast<std::size_t>(cons_scratch_[k]);
    if (row_flow_count_[row]++ == 0) {
      row_active_pos_[row] =
          static_cast<std::int32_t>(active_rows_.size());
      active_rows_.push_back(static_cast<std::int32_t>(row));
    }
    act_rpos_pool_[static_cast<std::size_t>(off) + k] =
        static_cast<std::int32_t>(row_flows_[row].size());
    row_flows_[row].push_back(id);
  }
  stats_.max_active_rows = std::max<std::int64_t>(
      stats_.max_active_rows,
      static_cast<std::int64_t>(active_rows_.size()));
  ++stats_.flows_activated;
}

void FluidNetwork::detach_flow(FlowId id, double credited_bytes) {
  Flow& flow = flows_[static_cast<std::size_t>(id)];
  const auto pos = static_cast<std::size_t>(flow.active_pos);
  const auto off = static_cast<std::size_t>(act_cons_off_[pos]);
  const auto len = static_cast<std::size_t>(act_cons_len_[pos]);
  // Detach from per-row flow lists and shrink the active-row set.
  for (std::size_t k = 0; k < len; ++k) {
    const auto row = static_cast<std::size_t>(act_cons_pool_[off + k]);
    auto& list = row_flows_[row];
    const auto rpos = static_cast<std::size_t>(act_rpos_pool_[off + k]);
    list[rpos] = list.back();
    list.pop_back();
    if (rpos < list.size()) {
      // Fix the moved flow's recorded position for this row.
      const auto mpos = static_cast<std::size_t>(
          flows_[static_cast<std::size_t>(list[rpos])].active_pos);
      const auto moff = static_cast<std::size_t>(act_cons_off_[mpos]);
      const auto mlen = static_cast<std::size_t>(act_cons_len_[mpos]);
      for (std::size_t j = 0; j < mlen; ++j) {
        if (static_cast<std::size_t>(act_cons_pool_[moff + j]) == row) {
          act_rpos_pool_[moff + j] = static_cast<std::int32_t>(rpos);
          break;
        }
      }
    }
    if (--row_flow_count_[row] == 0) {
      const auto apos = static_cast<std::size_t>(row_active_pos_[row]);
      active_rows_[apos] = active_rows_.back();
      active_rows_.pop_back();
      if (apos < active_rows_.size()) {
        row_active_pos_[static_cast<std::size_t>(active_rows_[apos])] =
            static_cast<std::int32_t>(apos);
      }
      row_active_pos_[row] = -1;
    }
  }
  // Credit the flow's payload to its path edges once, at detach — the
  // full message on completion, the bytes moved so far on cancellation
  // — so this equals the per-drain sum up to rounding, and stats are
  // only read after the run. The edge rows within the constraint slice
  // are exactly the path edges.
  const auto edge_rows = static_cast<std::int32_t>(stats_.edge_bytes.size());
  for (std::size_t k = 0; k < len; ++k) {
    const std::int32_t row = act_cons_pool_[off + k];
    if (row < edge_rows) {
      stats_.edge_bytes[static_cast<std::size_t>(row)] += credited_bytes;
    }
  }
  // Swap-remove from active_ and the parallel hot arrays (same removal
  // order as a linear scan, so active_ ordering — and thus allocation
  // tie-breaking — is unchanged). The arena slice becomes garbage until
  // the next compaction.
  active_[pos] = active_.back();
  active_.pop_back();
  act_rate_[pos] = act_rate_.back();
  act_rate_.pop_back();
  act_remaining_[pos] = act_remaining_.back();
  act_remaining_.pop_back();
  act_cons_live_ -= act_cons_len_[pos];
  act_cons_off_[pos] = act_cons_off_.back();
  act_cons_off_.pop_back();
  act_cons_len_[pos] = act_cons_len_.back();
  act_cons_len_.pop_back();
  if (static_cast<std::int64_t>(act_cons_pool_.size()) >
      2 * act_cons_live_ + 64) {
    compact_cons_pool();
  }
  if (pos < active_.size()) {
    flows_[static_cast<std::size_t>(active_[pos])].active_pos =
        static_cast<std::int64_t>(pos);
  }
  flow.active_pos = -1;
  --active_count_;
}

void FluidNetwork::compact_cons_pool() {
  std::vector<std::int32_t> pool;
  std::vector<std::int32_t> rpos;
  pool.reserve(static_cast<std::size_t>(act_cons_live_));
  rpos.reserve(static_cast<std::size_t>(act_cons_live_));
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const auto off = static_cast<std::size_t>(act_cons_off_[i]);
    const auto len = static_cast<std::size_t>(act_cons_len_[i]);
    act_cons_off_[i] = static_cast<std::int64_t>(pool.size());
    pool.insert(pool.end(), act_cons_pool_.begin() + off,
                act_cons_pool_.begin() + off + len);
    rpos.insert(rpos.end(), act_rpos_pool_.begin() + off,
                act_rpos_pool_.begin() + off + len);
  }
  act_cons_pool_.swap(pool);
  act_rpos_pool_.swap(rpos);
}

SimTime FluidNetwork::next_event_time() const {
  ensure_rates();
  return internal_next_event();
}

void FluidNetwork::advance_to(SimTime when, std::vector<FlowId>& completed) {
  AAPC_REQUIRE(when >= now_ - kTimeEpsilon,
               "cannot rewind network time to " << when << " from " << now_);
  while (true) {
    // Next internal event within (now_, when].
    ensure_rates();
    SimTime step_end = std::min(when, internal_next_event());
    step_end = std::max(step_end, now_);

    // Drain progress over [now_, step_end]. Sequential over the dense
    // hot arrays; per-edge byte accounting happens at completion.
    const double dt = step_end - now_;
    if (dt > 0) {
      const std::size_t n = active_.size();
      for (std::size_t i = 0; i < n; ++i) {
        const double moved = std::min(act_remaining_[i], act_rate_[i] * dt);
        act_remaining_[i] -= moved;
        total_delivered_bytes_ += moved;
      }
      stats_.busy_row_seconds +=
          dt * static_cast<double>(active_rows_.size());
      now_ = step_end;
    }

    // Collect completions (remaining ~ 0) and activations due now. The
    // scan is skipped while provably nothing can complete: a flow can
    // pass the relative test only within kTimeEpsilon of the cached
    // next_completion_, and completable_now_ covers the absolute test
    // (e.g. zero-byte flows). kPrefilter turns the per-flow division
    // into a multiply for flows that cannot pass either test.
    bool topology_changed = false;
    if (completable_now_ || now_ >= next_completion_ - 2 * kTimeEpsilon) {
      for (std::size_t i = 0; i < active_.size();) {
        if (act_remaining_[i] > kTimeEpsilon &&
            act_remaining_[i] > act_rate_[i] * kPrefilter) {
          ++i;
          continue;
        }
        // A flow can only hit zero if its rate was positive; rate 0 with
        // remaining 0 means it was added with 0 bytes — complete it too.
        if (act_remaining_[i] <= kTimeEpsilon ||
            (act_rate_[i] > 0 &&
             act_remaining_[i] / act_rate_[i] <= kTimeEpsilon)) {
          const FlowId id = active_[i];
          Flow& flow = flows_[static_cast<std::size_t>(id)];
          flow.done = true;
          flow.active = false;
          completed.push_back(id);
          ++stats_.completed_flows;
          detach_flow(id, flow.bytes);
          topology_changed = true;
        } else {
          ++i;
        }
      }
    }
    while (!pending_heap_.empty() &&
           pending_heap_.front().first <= now_ + kTimeEpsilon) {
      const FlowId id = pending_heap_.front().second;
      std::pop_heap(pending_heap_.begin(), pending_heap_.end(),
                    kPendingOrder);
      pending_heap_.pop_back();
      // Canceled-while-pending flows were uncounted by cancel_flow();
      // their heap entries are discarded here, lazily.
      if (flows_[static_cast<std::size_t>(id)].canceled) continue;
      --pending_count_;
      activate(id);
      topology_changed = true;
    }
    // Capacity changes due now, after completions and activations at
    // the same instant: a flow finishing exactly when its link fails
    // finishes, and one starting then starts under the new capacity.
    while (!capacity_events_.empty() &&
           capacity_events_.front().when <= now_ + kTimeEpsilon) {
      const CapacityEvent event = capacity_events_.front();
      std::pop_heap(capacity_events_.begin(), capacity_events_.end(),
                    capacity_event_after);
      capacity_events_.pop_back();
      apply_capacity(event.link, event.capacity);
      topology_changed = true;
    }
    if (topology_changed) {
      rates_dirty_ = true;
    }
    if (now_ >= when - kTimeEpsilon) {
      now_ = std::max(now_, when);
      return;
    }
  }
}

std::int32_t FluidNetwork::flow_hops(FlowId flow) const {
  AAPC_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
               "bad flow id " << flow);
  return flows_[static_cast<std::size_t>(flow)].hops;
}

double FluidNetwork::flow_rate(FlowId flow) const {
  AAPC_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
               "bad flow id " << flow);
  const Flow& f = flows_[static_cast<std::size_t>(flow)];
  if (!f.active) return 0.0;
  ensure_rates();
  return act_rate_[static_cast<std::size_t>(f.active_pos)];
}

double FluidNetwork::flow_remaining(FlowId flow) const {
  AAPC_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
               "bad flow id " << flow);
  const Flow& f = flows_[static_cast<std::size_t>(flow)];
  if (f.done || f.canceled) return 0.0;
  if (!f.active) return f.bytes;  // pending
  return act_remaining_[static_cast<std::size_t>(f.active_pos)];
}

double FluidNetwork::link_capacity(topology::LinkId link) const {
  AAPC_REQUIRE(link >= 0 && link < topo_.link_count(),
               "bad link id " << link);
  return link_capacity_[static_cast<std::size_t>(link)];
}

void FluidNetwork::set_link_capacity(topology::LinkId link,
                                     double bytes_per_sec) {
  apply_capacity(link, bytes_per_sec);
}

void FluidNetwork::schedule_capacity_change(SimTime when,
                                            topology::LinkId link,
                                            double bytes_per_sec) {
  AAPC_REQUIRE(when >= now_ - kTimeEpsilon,
               "capacity change scheduled in the past: " << when << " < "
                                                         << now_);
  AAPC_REQUIRE(link >= 0 && link < topo_.link_count(),
               "bad link id " << link);
  AAPC_REQUIRE(bytes_per_sec >= 0, "negative link capacity");
  if (when <= now_ + kTimeEpsilon) {
    apply_capacity(link, bytes_per_sec);
    return;
  }
  capacity_events_.push_back(
      CapacityEvent{when, capacity_event_seq_++, link, bytes_per_sec});
  std::push_heap(capacity_events_.begin(), capacity_events_.end(),
                 capacity_event_after);
}

bool FluidNetwork::cancel_flow(FlowId flow) {
  AAPC_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
               "bad flow id " << flow);
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  if (f.done || f.canceled) return false;
  f.canceled = true;
  ++stats_.canceled_flows;
  if (f.active) {
    const double moved = std::max(
        0.0,
        f.bytes - act_remaining_[static_cast<std::size_t>(f.active_pos)]);
    detach_flow(flow, moved);
    f.active = false;
    rates_dirty_ = true;
  } else {
    // Still pending: uncount it now; the heap entry is skipped lazily
    // when it surfaces.
    --pending_count_;
  }
  return true;
}

void FluidNetwork::apply_capacity(topology::LinkId link,
                                  double bytes_per_sec) {
  AAPC_REQUIRE(link >= 0 && link < topo_.link_count(),
               "bad link id " << link);
  AAPC_REQUIRE(bytes_per_sec >= 0, "negative link capacity");
  link_capacity_[static_cast<std::size_t>(link)] = bytes_per_sec;
  const double protocol = params_.protocol_efficiency;
  row_base_capacity_[static_cast<std::size_t>(2 * link)] =
      bytes_per_sec * protocol;
  row_base_capacity_[static_cast<std::size_t>(2 * link + 1)] =
      bytes_per_sec * protocol;
  // A machine endpoint's duplex cap derives from its (single) access
  // link, which is this link exactly when the machine touches it.
  const topology::NodeId ends[2] = {topo_.edge_source(2 * link),
                                    topo_.edge_target(2 * link)};
  for (const topology::NodeId node : ends) {
    if (topo_.is_machine(node)) {
      row_base_capacity_[static_cast<std::size_t>(
          topo_.directed_edge_count() + node)] =
          2.0 * bytes_per_sec * protocol * params_.duplex_efficiency;
    }
  }
  rates_dirty_ = true;
  ++stats_.capacity_changes;
}

double FluidNetwork::aggregate_throughput() const {
  return now_ > 0 ? total_delivered_bytes_ / now_ : 0.0;
}

void FluidNetwork::publish_metrics(obs::Registry& registry) const {
  publish_network_stats(registry, stats_, now_);
  // Per-directed-edge utilization over [0, now()]: payload carried
  // against the edge's effective capacity-time product. Edge rows are
  // rows [0, directed_edge_count), so row_base_capacity_ already holds
  // the protocol-derated bandwidth after any capacity events.
  for (std::size_t e = 0; e < stats_.edge_bytes.size(); ++e) {
    const double capacity = row_base_capacity_[e];
    const double utilization = (now_ > 0 && capacity > 0)
                                   ? stats_.edge_bytes[e] / (capacity * now_)
                                   : 0.0;
    registry
        .gauge("aapc_simnet_edge_utilization",
               "Delivered bytes over effective capacity x elapsed time, "
               "per directed edge",
               {{"edge", std::to_string(e)}})
        .set(utilization);
  }
}

void FluidNetwork::recompute_rates() {
  rates_dirty_ = false;
  ++stats_.rate_recomputations;
  const std::int32_t edge_rows = topo_.directed_edge_count();
  // Per-recompute scratch, initialized for active rows only. Edge rows:
  // usable capacity shrinks with the number of concurrent flows (incast
  // / trunk congestion). Machine rows: the duplex cap on combined
  // send+receive rate of one host.
  for (const std::int32_t c : active_rows_) {
    const auto idx = static_cast<std::size_t>(c);
    fill_count_[idx] = row_flow_count_[idx];
    fill_capacity_[idx] =
        c < edge_rows
            ? row_base_capacity_[idx] *
                  params_.contention_efficiency(edge_is_machine_[idx] != 0,
                                                row_flow_count_[idx])
            : row_base_capacity_[idx];
  }
  const std::size_t n = active_.size();
  flow_fixed_.assign(n, 0);
  flow_candidate_.assign(n, 0);
  unfixed_list_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    unfixed_list_[i] = static_cast<std::int64_t>(i);
  }

  // Progressive filling: repeatedly saturate the row with the smallest
  // fair share, fixing its flows at that rate. Only flows on a
  // bottleneck row can be fixed in a round. Both discovery strategies
  // below visit the fixable flows in ascending active_ position, so
  // tie-breaking matches a full in-order scan of the active flows
  // exactly.
  std::size_t unfixed = n;
  next_completion_ = kNever;
  completable_now_ = false;
  while (unfixed > 0) {
    // One division per row: the bottleneck collect below compares the
    // cached round-start shares instead of re-dividing.
    double min_share = std::numeric_limits<double>::infinity();
    for (const std::int32_t c : active_rows_) {
      const auto idx = static_cast<std::size_t>(c);
      if (fill_count_[idx] > 0) {
        fill_share_[idx] = fill_capacity_[idx] / fill_count_[idx];
        min_share = std::min(min_share, fill_share_[idx]);
      }
    }
    AAPC_CHECK(min_share < std::numeric_limits<double>::infinity());
    // Bottleneck rows this round, plus the combined length of their flow
    // lists (which include already-fixed flows).
    bottleneck_rows_.clear();
    std::size_t budget = 0;
    for (const std::int32_t c : active_rows_) {
      const auto idx = static_cast<std::size_t>(c);
      if (fill_count_[idx] > 0 &&
          fill_share_[idx] <= min_share * (1 + 1e-9)) {
        bottleneck_rows_.push_back(c);
        budget += row_flows_[idx].size();
      }
    }

    bool fixed_any = false;
    // Smallest remaining among flows fixed this round: enough to derive
    // the earliest completion (see below) without a per-flow scan.
    double round_min_rem = std::numeric_limits<double>::infinity();
    // Constraint rows come from the flat arena, not the Flow structs:
    // the whole scan stays within a few dense arrays.
    const std::int32_t* const pool = act_cons_pool_.data();
    const auto try_fix = [&](const std::size_t p) -> bool {
      const std::int32_t* const cons = pool + act_cons_off_[p];
      const std::int32_t len = act_cons_len_[p];
      bool at_bottleneck = false;
      for (std::int32_t k = 0; k < len; ++k) {
        const auto idx = static_cast<std::size_t>(cons[k]);
        if (fill_capacity_[idx] / fill_count_[idx] <=
            min_share * (1 + 1e-9)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) return false;
      act_rate_[p] = min_share;
      round_min_rem = std::min(round_min_rem, act_remaining_[p]);
      flow_fixed_[p] = 1;
      fixed_any = true;
      --unfixed;
      for (std::int32_t k = 0; k < len; ++k) {
        const auto idx = static_cast<std::size_t>(cons[k]);
        fill_capacity_[idx] = std::max(0.0, fill_capacity_[idx] - min_share);
        fill_count_[idx] -= 1;
      }
      return true;
    };

    if (budget < unfixed) {
      // Sparse round: the bottleneck rows' flow lists are shorter than
      // the unfixed set — gather candidates from them (flag-deduped)
      // and sort into active_ order.
      candidates_.clear();
      for (const std::int32_t c : bottleneck_rows_) {
        for (const FlowId id : row_flows_[static_cast<std::size_t>(c)]) {
          const std::int64_t pos =
              flows_[static_cast<std::size_t>(id)].active_pos;
          const auto p = static_cast<std::size_t>(pos);
          if (!flow_fixed_[p] && !flow_candidate_[p]) {
            flow_candidate_[p] = 1;
            candidates_.push_back(pos);
          }
        }
      }
      std::sort(candidates_.begin(), candidates_.end());
      for (const std::int64_t i : candidates_) {
        flow_candidate_[static_cast<std::size_t>(i)] = 0;
        try_fix(static_cast<std::size_t>(i));
      }
    } else {
      // Dense round: most flows are at a bottleneck (e.g. everything
      // crossing one switch fabric), so scan the unfixed list directly.
      // It stays ascending by construction; entries fixed by earlier
      // sparse rounds are skipped lazily, entries fixed this round are
      // compacted out.
      std::size_t w = 0;
      for (const std::int64_t i : unfixed_list_) {
        const auto p = static_cast<std::size_t>(i);
        if (flow_fixed_[p]) continue;
        if (!try_fix(p)) {
          unfixed_list_[w++] = i;
        }
      }
      unfixed_list_.resize(w);
    }
    AAPC_CHECK_MSG(fixed_any, "progressive filling made no progress");

    // Fold this round into the cached earliest completion. All flows
    // fixed this round share the rate min_share, and both the division
    // and the addition round monotonically, so the round's earliest
    // completion is now + min(remaining) / rate — the same value a
    // per-flow min would produce. Rate-0 rounds can still complete
    // zero-byte flows via the absolute remaining test; flag those.
    if (round_min_rem < std::numeric_limits<double>::infinity()) {
      if (min_share > 0) {
        next_completion_ =
            std::min(next_completion_, now_ + round_min_rem / min_share);
      }
      if (round_min_rem <= kTimeEpsilon) {
        completable_now_ = true;
      }
    }
  }
  // Between recomputations rates are constant, so the cached
  // now + remaining/rate values stay valid as time advances.
}

}  // namespace aapc::simnet
