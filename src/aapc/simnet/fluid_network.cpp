#include "aapc/simnet/fluid_network.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::simnet {

namespace {
// Completion/activation times within this window are treated as equal so
// symmetric flows finish in one batch (fewer rate recomputations and no
// artificial ordering from rounding noise).
constexpr double kTimeEpsilon = 1e-12;
}  // namespace

FluidNetwork::FluidNetwork(const topology::Topology& topo,
                           const NetworkParams& params)
    : topo_(topo), params_(params) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(params.link_bandwidth_bytes_per_sec > 0, "bandwidth <= 0");
  AAPC_REQUIRE(params.protocol_efficiency > 0 &&
                   params.protocol_efficiency <= 1.0,
               "protocol efficiency must be in (0, 1]");
  stats_.edge_bytes.assign(
      static_cast<std::size_t>(topo.directed_edge_count()), 0.0);
  row_count_ = topo.directed_edge_count() + topo.node_count();
  row_capacity_.assign(static_cast<std::size_t>(row_count_), 0.0);
  row_flow_count_.assign(static_cast<std::size_t>(row_count_), 0);
  edge_is_machine_.resize(stats_.edge_bytes.size());
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    edge_is_machine_[static_cast<std::size_t>(e)] =
        topo.is_machine(topo.edge_source(e)) ||
        topo.is_machine(topo.edge_target(e));
  }
  // Static base capacities per row (contention scaling happens per
  // recompute; everything else is topology-constant).
  row_base_capacity_.assign(static_cast<std::size_t>(row_count_), 0.0);
  const double protocol = params.protocol_efficiency;
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    row_base_capacity_[static_cast<std::size_t>(e)] =
        params.link_bandwidth(e / 2) * protocol;
  }
  for (topology::NodeId node = 0; node < topo.node_count(); ++node) {
    const auto row = static_cast<std::size_t>(topo.directed_edge_count() +
                                              node);
    if (topo.is_machine(node)) {
      const topology::NodeId neighbor = topo.neighbors(node).front();
      const topology::LinkId link = topo.edge_between(node, neighbor) / 2;
      row_base_capacity_[row] =
          2.0 * params.link_bandwidth(link) * protocol *
          params.duplex_efficiency;
    } else {
      row_base_capacity_[row] =
          params.effective_bandwidth() * params.switch_fabric_links;
    }
  }
}

FlowId FluidNetwork::add_flow(topology::NodeId src, topology::NodeId dst,
                              Bytes bytes, SimTime start) {
  AAPC_REQUIRE(start >= now_ - kTimeEpsilon,
               "flow starts in the past: " << start << " < " << now_);
  AAPC_REQUIRE(src != dst, "self flows are not network flows");
  Flow flow;
  flow.path = topo_.path(src, dst);
  // Capacity rows: path edges, the two endpoint machines (duplex cap),
  // and every switch traversed (fabric cap). Node rows are indexed
  // directed_edge_count() + node id.
  flow.constraints.reserve(2 * flow.path.size() + 1);
  for (const topology::EdgeId e : flow.path) {
    flow.constraints.push_back(e);
  }
  flow.constraints.push_back(topo_.directed_edge_count() + src);
  flow.constraints.push_back(topo_.directed_edge_count() + dst);
  for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
    flow.constraints.push_back(topo_.directed_edge_count() +
                               topo_.edge_target(flow.path[i]));
  }
  flow.remaining = static_cast<double>(bytes);
  flow.start = std::max(start, now_);
  const FlowId id = static_cast<FlowId>(flows_.size());
  flows_.push_back(std::move(flow));
  if (flows_.back().start <= now_ + kTimeEpsilon) {
    flows_.back().active = true;
    active_.push_back(id);
    ++active_count_;
    stats_.max_concurrent_flows =
        std::max<std::int64_t>(stats_.max_concurrent_flows, active_count_);
    recompute_rates();
  } else {
    pending_.push_back(id);
    ++pending_count_;
  }
  return id;
}

SimTime FluidNetwork::next_event_time() const {
  SimTime best = kNever;
  for (const FlowId id : pending_) {
    best = std::min(best, flows_[static_cast<std::size_t>(id)].start);
  }
  for (const FlowId id : active_) {
    const Flow& flow = flows_[static_cast<std::size_t>(id)];
    if (flow.rate > 0) {
      best = std::min(best, now_ + flow.remaining / flow.rate);
    }
  }
  return best;
}

void FluidNetwork::advance_to(SimTime when, std::vector<FlowId>& completed) {
  AAPC_REQUIRE(when >= now_ - kTimeEpsilon,
               "cannot rewind network time to " << when << " from " << now_);
  while (true) {
    // Next internal event within (now_, when].
    SimTime step_end = when;
    for (const FlowId id : pending_) {
      step_end = std::min(step_end, flows_[static_cast<std::size_t>(id)].start);
    }
    for (const FlowId id : active_) {
      const Flow& flow = flows_[static_cast<std::size_t>(id)];
      if (flow.rate > 0) {
        step_end = std::min(step_end, now_ + flow.remaining / flow.rate);
      }
    }
    step_end = std::max(step_end, now_);

    // Drain progress over [now_, step_end].
    const double dt = step_end - now_;
    if (dt > 0) {
      for (const FlowId id : active_) {
        Flow& flow = flows_[static_cast<std::size_t>(id)];
        const double moved = std::min(flow.remaining, flow.rate * dt);
        flow.remaining -= moved;
        total_delivered_bytes_ += moved;
        for (const topology::EdgeId e : flow.path) {
          stats_.edge_bytes[static_cast<std::size_t>(e)] += moved;
        }
      }
      now_ = step_end;
    }

    // Collect completions (remaining ~ 0) and activations due now.
    bool topology_changed = false;
    for (std::size_t i = 0; i < active_.size();) {
      const FlowId id = active_[i];
      Flow& flow = flows_[static_cast<std::size_t>(id)];
      // A flow can only hit zero if its rate was positive; rate 0 with
      // remaining 0 means it was added with 0 bytes — complete it too.
      if (flow.remaining <= kTimeEpsilon ||
          (flow.rate > 0 && flow.remaining / flow.rate <= kTimeEpsilon)) {
        flow.remaining = 0;
        flow.done = true;
        flow.active = false;
        completed.push_back(id);
        ++stats_.completed_flows;
        active_[i] = active_.back();
        active_.pop_back();
        --active_count_;
        topology_changed = true;
      } else {
        ++i;
      }
    }
    for (std::size_t i = 0; i < pending_.size();) {
      const FlowId id = pending_[i];
      Flow& flow = flows_[static_cast<std::size_t>(id)];
      if (flow.start <= now_ + kTimeEpsilon) {
        flow.active = true;
        active_.push_back(id);
        ++active_count_;
        stats_.max_concurrent_flows =
            std::max<std::int64_t>(stats_.max_concurrent_flows, active_count_);
        pending_[i] = pending_.back();
        pending_.pop_back();
        --pending_count_;
        topology_changed = true;
      } else {
        ++i;
      }
    }
    if (topology_changed) {
      recompute_rates();
    }
    if (now_ >= when - kTimeEpsilon) {
      now_ = std::max(now_, when);
      return;
    }
  }
}

std::int32_t FluidNetwork::flow_hops(FlowId flow) const {
  AAPC_REQUIRE(flow >= 0 && flow < static_cast<FlowId>(flows_.size()),
               "bad flow id " << flow);
  return static_cast<std::int32_t>(
      flows_[static_cast<std::size_t>(flow)].path.size());
}

double FluidNetwork::aggregate_throughput() const {
  return now_ > 0 ? total_delivered_bytes_ / now_ : 0.0;
}

void FluidNetwork::recompute_rates() {
  ++stats_.rate_recomputations;
  const std::int32_t edge_rows = topo_.directed_edge_count();
  std::fill(row_flow_count_.begin(), row_flow_count_.end(), 0);
  flow_fixed_.assign(active_.size(), 0);

  for (const FlowId id : active_) {
    for (const std::int32_t c : flows_[static_cast<std::size_t>(id)].constraints) {
      row_flow_count_[static_cast<std::size_t>(c)] += 1;
    }
  }
  // Edge rows: usable capacity shrinks with the number of concurrent
  // flows (incast / trunk congestion). Machine rows: the duplex cap on
  // combined send+receive rate of one host.
  for (std::int32_t c = 0; c < row_count_; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    if (c < edge_rows) {
      row_capacity_[idx] =
          row_base_capacity_[idx] *
          params_.contention_efficiency(edge_is_machine_[idx] != 0,
                                        row_flow_count_[idx]);
    } else {
      row_capacity_[idx] = row_base_capacity_[idx];
    }
  }

  // Progressive filling: repeatedly saturate the row with the smallest
  // fair share, fixing its flows at that rate.
  std::size_t unfixed = active_.size();
  while (unfixed > 0) {
    double min_share = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < row_capacity_.size(); ++c) {
      if (row_flow_count_[c] > 0) {
        min_share =
            std::min(min_share, row_capacity_[c] / row_flow_count_[c]);
      }
    }
    AAPC_CHECK(min_share < std::numeric_limits<double>::infinity());
    // Fix every unfixed flow crossing a bottleneck row at min_share.
    bool fixed_any = false;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (flow_fixed_[i]) continue;
      Flow& flow = flows_[static_cast<std::size_t>(active_[i])];
      bool at_bottleneck = false;
      for (const std::int32_t c : flow.constraints) {
        const auto idx = static_cast<std::size_t>(c);
        if (row_capacity_[idx] / row_flow_count_[idx] <=
            min_share * (1 + 1e-9)) {
          at_bottleneck = true;
          break;
        }
      }
      if (!at_bottleneck) continue;
      flow.rate = min_share;
      flow_fixed_[i] = 1;
      fixed_any = true;
      --unfixed;
      for (const std::int32_t c : flow.constraints) {
        const auto idx = static_cast<std::size_t>(c);
        row_capacity_[idx] = std::max(0.0, row_capacity_[idx] - min_share);
        row_flow_count_[idx] -= 1;
      }
    }
    AAPC_CHECK_MSG(fixed_any, "progressive filling made no progress");
  }
}

}  // namespace aapc::simnet
