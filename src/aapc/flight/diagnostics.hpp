// Typed diagnostics shared by the executor's stall/abort exceptions and
// flight::analyze()'s verdicts, so a watchdog report and an analyzer
// verdict name the same rank/link/transfer with the same words (one
// formatting path). The to_string() renderings are byte-stable and are
// the exact messages ExecutionStalled / TransferAborted carry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::flight {

/// One incomplete request of a blocked rank (first 8 are listed).
struct PendingRequest {
  bool is_send = false;
  std::int32_t peer = -1;
  std::int32_t tag = 0;
  std::int64_t bytes = 0;
  bool matched = false;
};

/// One non-done rank at the moment the executor declared a deadlock.
struct BlockedRank {
  std::int32_t rank = -1;
  /// Executor state name ("wait", "waitall", "crashed", ...).
  std::string state;
  std::int64_t pc = 0;
  std::int64_t program_size = 0;
  double clock = 0;
  /// Up to 8 incomplete requests, in post order.
  std::vector<PendingRequest> pending;
  /// Full incomplete-request count (>= pending.size()).
  std::int64_t pending_total = 0;
};

/// A matched transfer making no progress (rate 0 with bytes left, or
/// watchdog-expired). `remaining` is bytes undelivered.
struct StuckTransfer {
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t tag = 0;
  std::int64_t bytes = 0;
  double remaining = 0;

  friend bool operator==(const StuckTransfer&, const StuckTransfer&) = default;
};

/// Everything the executor knows when no event can unblock any rank.
struct StallDiagnostic {
  std::string program_set;
  std::vector<BlockedRank> blocked;
  /// Sorted by (src, dst, tag) — byte-stable across hash-map orders.
  std::vector<StuckTransfer> stuck;

  /// The ExecutionStalled message (exact legacy format).
  std::string to_string() const;
};

/// A transfer whose watchdog retries were exhausted.
struct AbortDiagnostic {
  StuckTransfer transfer;
  /// Attempts made, the original post included.
  std::int32_t attempts = 0;
  double timeout = 0;

  /// The TransferAborted message (exact legacy format).
  std::string to_string() const;
};

/// "rank S -> rank D tag=T bytes=B" — the one spelling of a transfer,
/// used by stall/abort messages and analyzer verdicts alike.
std::string format_transfer(std::int32_t src, std::int32_t dst,
                            std::int32_t tag, std::int64_t bytes);

/// "pending send to rank P tag=T bytes=B (matched, in flight)".
std::string format_pending(const PendingRequest& request);

/// "link L (a - b)", plus " [bridge link K]" when `bridge_link` >= 0.
std::string format_link(const topology::Topology& topo, topology::LinkId link,
                        std::int32_t bridge_link = -1);

}  // namespace aapc::flight
