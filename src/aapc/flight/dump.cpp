#include "aapc/flight/dump.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "aapc/common/bytes.hpp"
#include "aapc/common/error.hpp"

namespace aapc::flight {

namespace {

// Sanity ceilings for decode: a header claiming more implies corruption
// (the executor tops out orders of magnitude below both).
constexpr std::uint32_t kMaxRanks = 1u << 20;
constexpr std::uint32_t kMaxRingCapacity = 1u << 24;
constexpr std::size_t kMaxLabel = 4096;

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

FlightDump snapshot(const Recorder& recorder, DumpMeta meta) {
  meta.rank_count = recorder.rank_count();
  meta.ring_capacity = recorder.ring_capacity();
  meta.sync_tag_base = recorder.sync_tag_base();
  FlightDump dump;
  dump.meta = std::move(meta);
  dump.ranks.resize(static_cast<std::size_t>(recorder.rank_count()));
  for (std::int32_t r = 0; r < recorder.rank_count(); ++r) {
    RankLog& log = dump.ranks[static_cast<std::size_t>(r)];
    log.dropped = recorder.snapshot_rank(r, log.events);
  }
  return dump;
}

std::string encode_dump(const FlightDump& dump) {
  ByteWriter w;
  w.u64(kDumpMagic);
  w.u16(kDumpVersion);
  w.u32(static_cast<std::uint32_t>(dump.meta.rank_count));
  w.u32(dump.meta.ring_capacity);
  w.u8(dump.meta.backend);
  w.u32(static_cast<std::uint32_t>(dump.meta.sync_tag_base));
  w.u64(double_bits(dump.meta.effective_bandwidth));
  w.u64(double_bits(dump.meta.send_overhead));
  w.u64(double_bits(dump.meta.recv_overhead));
  w.u64(double_bits(dump.meta.completion_time));
  w.u64(static_cast<std::uint64_t>(dump.meta.retransmissions));
  w.u64(static_cast<std::uint64_t>(dump.meta.segments_lost));
  w.str(dump.meta.label);
  AAPC_REQUIRE(dump.ranks.size() ==
                   static_cast<std::size_t>(dump.meta.rank_count),
               "flight dump has " << dump.ranks.size() << " rank logs for "
                                  << dump.meta.rank_count << " ranks");
  for (const RankLog& log : dump.ranks) {
    w.u64(log.dropped);
    w.u32(static_cast<std::uint32_t>(log.events.size()));
    for (const Event& e : log.events) {
      w.u8(static_cast<std::uint8_t>(e.kind));
      w.u32(static_cast<std::uint32_t>(e.peer));
      w.u32(static_cast<std::uint32_t>(e.tag));
      w.u64(static_cast<std::uint64_t>(e.bytes));
      w.u32(static_cast<std::uint32_t>(e.phase));
      w.u32(static_cast<std::uint32_t>(e.message));
      w.u64(double_bits(e.time));
      w.u64(double_bits(e.aux));
    }
  }
  return w.take();
}

FlightDump decode_dump(std::string_view bytes) {
  ByteReader r(bytes);
  const std::uint64_t magic = r.u64();
  AAPC_REQUIRE(magic == kDumpMagic,
               "flight dump: bad magic 0x" << std::hex << magic);
  const std::uint16_t version = r.u16();
  AAPC_REQUIRE(version == kDumpVersion,
               "flight dump: unsupported version " << version << " (want "
                                                   << kDumpVersion << ")");
  FlightDump dump;
  const std::uint32_t rank_count = r.u32();
  AAPC_REQUIRE(rank_count <= kMaxRanks,
               "flight dump: implausible rank count " << rank_count);
  dump.meta.rank_count = static_cast<std::int32_t>(rank_count);
  dump.meta.ring_capacity = r.u32();
  AAPC_REQUIRE(dump.meta.ring_capacity <= kMaxRingCapacity,
               "flight dump: implausible ring capacity "
                   << dump.meta.ring_capacity);
  dump.meta.backend = r.u8();
  AAPC_REQUIRE(dump.meta.backend <= 1,
               "flight dump: unknown backend "
                   << static_cast<int>(dump.meta.backend));
  dump.meta.sync_tag_base = static_cast<std::int32_t>(r.u32());
  AAPC_REQUIRE(dump.meta.sync_tag_base > 0,
               "flight dump: sync_tag_base must be positive");
  dump.meta.effective_bandwidth = bits_double(r.u64());
  dump.meta.send_overhead = bits_double(r.u64());
  dump.meta.recv_overhead = bits_double(r.u64());
  dump.meta.completion_time = bits_double(r.u64());
  dump.meta.retransmissions = static_cast<std::int64_t>(r.u64());
  dump.meta.segments_lost = static_cast<std::int64_t>(r.u64());
  dump.meta.label = r.str(kMaxLabel);
  dump.ranks.resize(rank_count);
  for (std::uint32_t rank = 0; rank < rank_count; ++rank) {
    RankLog& log = dump.ranks[rank];
    log.dropped = r.u64();
    const std::uint32_t count = r.u32();
    AAPC_REQUIRE(count <= dump.meta.ring_capacity,
                 "flight dump: rank " << rank << " claims " << count
                                      << " events in a ring of "
                                      << dump.meta.ring_capacity);
    // 41 bytes per record; checking up front turns an overlength count
    // into one error instead of a partial parse.
    AAPC_REQUIRE(r.remaining() >= static_cast<std::size_t>(count) * 41,
                 "flight dump: rank " << rank << " truncated ("
                                      << r.remaining() << " bytes for "
                                      << count << " events)");
    log.events.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Event& e = log.events[i];
      const std::uint8_t kind = r.u8();
      AAPC_REQUIRE(kind >= 1 && kind <= kEventKindMax,
                   "flight dump: rank " << rank << " event " << i
                                        << " has unknown kind "
                                        << static_cast<int>(kind));
      e.kind = static_cast<EventKind>(kind);
      e.peer = static_cast<std::int32_t>(r.u32());
      e.tag = static_cast<std::int32_t>(r.u32());
      e.bytes = static_cast<std::int64_t>(r.u64());
      e.phase = static_cast<std::int32_t>(r.u32());
      e.message = static_cast<std::int32_t>(r.u32());
      e.time = bits_double(r.u64());
      e.aux = bits_double(r.u64());
    }
  }
  r.expect_done("flight dump");
  return dump;
}

void write_dump_file(const FlightDump& dump, const std::string& path) {
  const std::string bytes = encode_dump(dump);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  AAPC_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) {
    throw Error("write to '" + path + "' failed");
  }
}

FlightDump read_dump_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AAPC_REQUIRE(in.good(), "cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  AAPC_REQUIRE(!in.bad(), "read from '" << path << "' failed");
  return decode_dump(buffer.str());
}

}  // namespace aapc::flight
