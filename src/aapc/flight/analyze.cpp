#include "aapc/flight/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "aapc/common/error.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/sync/sync_plan.hpp"

namespace aapc::flight {

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1));
  return values[index];
}

double median(const std::vector<double>& values) {
  return percentile(values, 0.5);
}

std::uint64_t transfer_key(std::int32_t src, std::int32_t dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Per-(src, dst) send bookkeeping for stuck-transfer detection. Only
/// sender-side events count: receives are preposted en masse by the
/// lowering, so an unmatched recv is cascade, not evidence.
struct SendProgress {
  std::int64_t posts = 0;
  std::int64_t completions = 0;
  std::int32_t tag = 0;
  std::int64_t bytes = 0;
};

}  // namespace

const char* verdict_kind_name(VerdictKind kind) {
  switch (kind) {
    case VerdictKind::kStragglerRank: return "straggler_rank";
    case VerdictKind::kDegradedLink: return "degraded_link";
    case VerdictKind::kDownLink: return "down_link";
    case VerdictKind::kLossyTransport: return "lossy_transport";
  }
  return "?";
}

AnalysisReport analyze(const FlightDump& dump,
                       const topology::Topology& topo,
                       const core::Schedule* schedule,
                       const sync::SyncPlan* plan,
                       const stp::SpanningTree* tree,
                       const AnalyzeOptions& options) {
  const std::int32_t ranks = dump.meta.rank_count;
  AAPC_REQUIRE(ranks == topo.machine_count(),
               "flight dump has " << ranks << " ranks but the topology has "
                                  << topo.machine_count() << " machines");
  AAPC_REQUIRE(dump.ranks.size() == static_cast<std::size_t>(ranks),
               "flight dump rank logs do not match its header");

  AnalysisReport report;
  report.rank_post_factor.assign(static_cast<std::size_t>(ranks), 0.0);

  // ---- per-rank CPU post-cost factors (straggler signal) ------------
  // Post costs are exactly overhead x cpu_factor, so dividing by the
  // configured overhead recovers the factor per event. The recent
  // window catches late-onset stragglers even when earlier healthy
  // posts dominate (or were overwritten).
  std::vector<std::vector<double>> factors(static_cast<std::size_t>(ranks));
  // ---- transfer drain excess (link-health signal) -------------------
  struct LinkAccum {
    std::int64_t transfers = 0;
    double min_excess = 0;
    double sum_excess = 0;
    /// All excesses, for the lossy-run quartile (stochastic loss spares
    /// the occasional transfer, so the strict minimum under-reports).
    std::vector<double> excesses;
    std::int64_t stuck = 0;
  };
  std::unordered_map<topology::LinkId, LinkAccum> link_accum;
  std::vector<double> all_excess;
  std::unordered_map<std::uint64_t, SendProgress> sends;
  std::vector<topology::EdgeId> path;

  for (std::int32_t r = 0; r < ranks; ++r) {
    const RankLog& log = dump.ranks[static_cast<std::size_t>(r)];
    report.events_analyzed += static_cast<std::int64_t>(log.events.size());
    report.events_dropped += static_cast<std::int64_t>(log.dropped);
    for (const Event& e : log.events) {
      switch (e.kind) {
        case EventKind::kSendPost:
          if (dump.meta.send_overhead > 0) {
            factors[static_cast<std::size_t>(r)].push_back(
                (e.time - e.aux) / dump.meta.send_overhead);
          }
          if (e.tag < dump.meta.sync_tag_base) {
            SendProgress& p = sends[transfer_key(r, e.peer)];
            ++p.posts;
            p.tag = e.tag;
            p.bytes = e.bytes;
          }
          break;
        case EventKind::kRecvPost:
          if (dump.meta.recv_overhead > 0) {
            factors[static_cast<std::size_t>(r)].push_back(
                (e.time - e.aux) / dump.meta.recv_overhead);
          }
          break;
        case EventKind::kSendComplete: {
          if (e.tag >= dump.meta.sync_tag_base) break;
          ++sends[transfer_key(r, e.peer)].completions;
          ++report.transfers_observed;
          if (dump.meta.effective_bandwidth <= 0 || e.bytes <= 0) break;
          const double expected = static_cast<double>(e.bytes) /
                                  dump.meta.effective_bandwidth;
          if (expected <= 0) break;
          const double excess = (e.time - e.aux) / expected;
          all_excess.push_back(excess);
          if (e.peer < 0 || e.peer >= ranks) break;
          topo.path_into(topo.machine_node(r), topo.machine_node(e.peer),
                         path);
          for (const topology::EdgeId edge : path) {
            LinkAccum& acc = link_accum[topo.edge_link(edge)];
            acc.min_excess = acc.transfers == 0
                                 ? excess
                                 : std::min(acc.min_excess, excess);
            acc.sum_excess += excess;
            acc.excesses.push_back(excess);
            ++acc.transfers;
          }
          break;
        }
        case EventKind::kWatchdogRetry:
          ++report.watchdog_retries;
          break;
        case EventKind::kRecvComplete:
        case EventKind::kSyncWait:
        case EventKind::kSyncRelease:
          break;
      }
    }
  }

  // Straggler factors: prefer the recent window so the estimate tracks
  // the rank's current behavior, but never below the all-time median
  // (a straggler slow from the start should not be diluted).
  std::vector<double> nonzero;
  for (std::int32_t r = 0; r < ranks; ++r) {
    const std::vector<double>& f = factors[static_cast<std::size_t>(r)];
    if (f.empty()) continue;
    const auto window = static_cast<std::size_t>(
        std::max<std::int32_t>(1, options.recent_window));
    const std::vector<double> recent(
        f.end() - static_cast<std::ptrdiff_t>(std::min(window, f.size())),
        f.end());
    const double estimate = std::max(median(f), median(recent));
    report.rank_post_factor[static_cast<std::size_t>(r)] = estimate;
    nonzero.push_back(estimate);
  }
  const double fleet_factor = median(nonzero);

  // Stuck transfers: sender posted (possibly retried) but never drained.
  for (const auto& [key, progress] : sends) {
    if (progress.completions >= progress.posts) continue;
    report.stuck.push_back(StuckTransfer{
        static_cast<std::int32_t>(key >> 32),
        static_cast<std::int32_t>(static_cast<std::uint32_t>(key)),
        progress.tag, progress.bytes, static_cast<double>(progress.bytes)});
  }
  std::sort(report.stuck.begin(), report.stuck.end(),
            [](const StuckTransfer& a, const StuckTransfer& b) {
              return std::tie(a.src, a.dst, a.tag) <
                     std::tie(b.src, b.dst, b.tag);
            });

  // ---- verdicts -----------------------------------------------------
  auto bridge_link_of = [&](topology::LinkId link) {
    return tree != nullptr ? tree->bridge_link_of(link) : -1;
  };

  // Down links: on the path of every stuck transfer. Falls back to the
  // most-crossed link when the stuck set has no common link (multiple
  // independent failures).
  if (!report.stuck.empty()) {
    std::unordered_map<topology::LinkId, std::int64_t> crossed;
    for (const StuckTransfer& t : report.stuck) {
      if (t.src < 0 || t.src >= ranks || t.dst < 0 || t.dst >= ranks) {
        continue;
      }
      topo.path_into(topo.machine_node(t.src), topo.machine_node(t.dst),
                     path);
      std::unordered_set<topology::LinkId> seen;
      for (const topology::EdgeId edge : path) {
        if (seen.insert(topo.edge_link(edge)).second) {
          ++crossed[topo.edge_link(edge)];
        }
      }
    }
    const auto stuck_count = static_cast<std::int64_t>(report.stuck.size());
    std::vector<topology::LinkId> candidates;
    std::int64_t best_crossed = 0;
    for (const auto& [link, count] : crossed) {
      best_crossed = std::max(best_crossed, count);
      if (count == stuck_count) candidates.push_back(link);
      link_accum[link].stuck = count;
    }
    if (candidates.empty()) {
      for (const auto& [link, count] : crossed) {
        if (count == best_crossed) candidates.push_back(link);
      }
    }
    // Prefer switch-to-switch links: a down access link would imply
    // every stuck transfer shares one machine, which the intersection
    // already encodes — ties go to the trunk side.
    auto is_access = [&](topology::LinkId link) {
      const auto [a, b] = topo.link_endpoints(link);
      return topo.is_machine(a) || topo.is_machine(b);
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](topology::LinkId a, topology::LinkId b) {
                return std::make_tuple(is_access(a), a) <
                       std::make_tuple(is_access(b), b);
              });
    for (const topology::LinkId link : candidates) {
      Verdict v;
      v.kind = VerdictKind::kDownLink;
      v.link = link;
      v.bridge_link = bridge_link_of(link);
      v.severity = static_cast<double>(crossed[link]);
      v.score = 1000.0 + static_cast<double>(crossed[link]);
      std::ostringstream os;
      os << format_link(topo, link, v.bridge_link) << ": on the path of "
         << crossed[link] << "/" << stuck_count
         << " stuck transfer(s), e.g. "
         << format_transfer(report.stuck.front().src,
                            report.stuck.front().dst,
                            report.stuck.front().tag,
                            report.stuck.front().bytes);
      if (report.watchdog_retries > 0) {
        os << "; " << report.watchdog_retries << " watchdog retries";
      }
      v.detail = os.str();
      report.verdicts.push_back(std::move(v));
    }
  }

  // Stragglers: normalized against the fleet median (the healthy
  // majority), so no absolute calibration is needed.
  if (fleet_factor > 0) {
    for (std::int32_t r = 0; r < ranks; ++r) {
      const double factor =
          report.rank_post_factor[static_cast<std::size_t>(r)];
      const double normalized = factor / fleet_factor;
      if (factor <= 0 || normalized < options.straggler_threshold) continue;
      Verdict v;
      v.kind = VerdictKind::kStragglerRank;
      v.rank = r;
      v.severity = factor;
      v.score = normalized - 1.0;
      std::ostringstream os;
      os << "rank " << r << ": post cost " << factor
         << "x nominal (fleet median " << fleet_factor << "x) over "
         << factors[static_cast<std::size_t>(r)].size() << " posts";
      v.detail = os.str();
      report.verdicts.push_back(std::move(v));
    }
  }

  // Degraded / lossy links: a link is suspect only when even its
  // *fastest* transfer drained slow — contention slows some transfers
  // on a healthy link, a capacity loss slows them all.
  const double baseline_excess = percentile(all_excess, 0.25);
  const bool lossy_run =
      dump.meta.backend == 1 && dump.meta.retransmissions > 0;
  if (baseline_excess > 0) {
    for (const auto& [link, acc] : link_accum) {
      if (acc.transfers == 0) continue;
      // Deterministic capacity loss slows every transfer, so the strict
      // minimum is the cleanest signal. Stochastic loss occasionally
      // lets a transfer through unscathed — one lucky drain must not
      // exonerate a link that retransmitted everything else — so lossy
      // runs judge the link's lower-quartile excess instead.
      const double link_signal = lossy_run ? percentile(acc.excesses, 0.25)
                                           : acc.min_excess;
      const double normalized = link_signal / baseline_excess;
      if (normalized < options.link_excess_threshold) continue;
      if (std::any_of(report.verdicts.begin(), report.verdicts.end(),
                      [&](const Verdict& v) {
                        return v.kind == VerdictKind::kDownLink &&
                               v.link == link;
                      })) {
        continue;
      }
      Verdict v;
      v.kind = lossy_run ? VerdictKind::kLossyTransport
                         : VerdictKind::kDegradedLink;
      v.link = link;
      v.bridge_link = bridge_link_of(link);
      v.severity = link_signal;
      v.score = normalized - 1.0;
      std::ostringstream os;
      os << format_link(topo, link, v.bridge_link) << ": "
         << acc.transfers << " transfer(s), "
         << (lossy_run ? "p25" : "min") << " drain excess " << link_signal
         << "x vs fleet baseline " << baseline_excess << "x";
      if (lossy_run) {
        os << "; " << dump.meta.retransmissions
           << " retransmissions on the packet backend";
      }
      v.detail = os.str();
      report.verdicts.push_back(std::move(v));
    }
  }

  std::stable_sort(report.verdicts.begin(), report.verdicts.end(),
                   [](const Verdict& a, const Verdict& b) {
                     return a.score > b.score;
                   });

  // Per-link usage table, sorted by link id.
  report.links.reserve(link_accum.size());
  for (const auto& [link, acc] : link_accum) {
    LinkUsage usage;
    usage.link = link;
    usage.transfers = acc.transfers;
    usage.min_excess = acc.min_excess;
    usage.mean_excess =
        acc.transfers > 0
            ? acc.sum_excess / static_cast<double>(acc.transfers)
            : 0;
    usage.stuck = acc.stuck;
    report.links.push_back(usage);
  }
  std::sort(report.links.begin(), report.links.end(),
            [](const LinkUsage& a, const LinkUsage& b) {
              return a.link < b.link;
            });

  // ---- dependence-graph reconstruction ------------------------------
  if (schedule != nullptr && plan != nullptr &&
      schedule->message_count() > 0) {
    const auto n = static_cast<std::size_t>(schedule->message_count());
    // (src, dst) -> message id, for dumps recorded without annotation.
    std::unordered_map<std::uint64_t, std::int32_t> message_of;
    message_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const core::Message& m = schedule->messages[i].message;
      message_of[transfer_key(m.src, m.dst)] =
          static_cast<std::int32_t>(i);
    }
    constexpr double kUnobserved = -1.0;
    std::vector<double> activation(n, kUnobserved);
    std::vector<double> completion(n, kUnobserved);
    for (std::int32_t r = 0; r < ranks; ++r) {
      for (const Event& e : dump.ranks[static_cast<std::size_t>(r)].events) {
        if (e.kind != EventKind::kSendComplete ||
            e.tag >= dump.meta.sync_tag_base) {
          continue;
        }
        std::int32_t id = e.message;
        if (id < 0) {
          const auto it = message_of.find(transfer_key(r, e.peer));
          if (it == message_of.end()) continue;
          id = it->second;
        }
        if (id < 0 || static_cast<std::size_t>(id) >= n) continue;
        activation[static_cast<std::size_t>(id)] = e.aux;
        completion[static_cast<std::size_t>(id)] = e.time;
      }
    }
    const sync::PlanAdjacency adjacency =
        sync::build_adjacency(*plan, schedule->message_count());
    report.rank_slack.assign(static_cast<std::size_t>(ranks), 0.0);
    std::int32_t end = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (completion[i] == kUnobserved) continue;
      if (end < 0 || completion[i] > completion[static_cast<std::size_t>(end)]) {
        end = static_cast<std::int32_t>(i);
      }
      double ready = kUnobserved;
      for (const std::int32_t pred : adjacency.in[i]) {
        ready = std::max(ready, completion[static_cast<std::size_t>(pred)]);
      }
      if (ready == kUnobserved) continue;
      const double slack = std::max(0.0, activation[i] - ready);
      report.total_slack += slack;
      const core::Rank sender = schedule->messages[i].message.src;
      if (sender >= 0 && sender < ranks) {
        report.rank_slack[static_cast<std::size_t>(sender)] += slack;
      }
    }
    // Critical path: walk back from the last completion through the
    // latest-finishing observed predecessor.
    std::int32_t cursor = end;
    while (cursor >= 0) {
      report.critical_path.push_back(cursor);
      std::int32_t next = -1;
      for (const std::int32_t pred :
           adjacency.in[static_cast<std::size_t>(cursor)]) {
        if (completion[static_cast<std::size_t>(pred)] == kUnobserved) {
          continue;
        }
        if (next < 0 || completion[static_cast<std::size_t>(pred)] >
                            completion[static_cast<std::size_t>(next)]) {
          next = pred;
        }
      }
      cursor = next;
    }
    std::reverse(report.critical_path.begin(), report.critical_path.end());
    if (!report.critical_path.empty()) {
      const auto first =
          static_cast<std::size_t>(report.critical_path.front());
      const auto last =
          static_cast<std::size_t>(report.critical_path.back());
      if (activation[first] != kUnobserved) {
        report.critical_path_span = completion[last] - activation[first];
      }
    }
  }

  return report;
}

std::string AnalysisReport::summary() const {
  std::ostringstream os;
  if (verdicts.empty()) {
    os << "no verdict: run looks healthy (" << transfers_observed
       << " transfers, " << events_analyzed << " events)\n";
    return os.str();
  }
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Verdict& v = verdicts[i];
    os << (i + 1) << ". " << verdict_kind_name(v.kind) << ": " << v.detail
       << " [score " << v.score << "]\n";
  }
  return os.str();
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"verdicts\":[";
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Verdict& v = verdicts[i];
    if (i > 0) os << ",";
    os << "{\"kind\":\"" << verdict_kind_name(v.kind) << "\""
       << ",\"rank\":" << v.rank << ",\"link\":" << v.link
       << ",\"bridge_link\":" << v.bridge_link
       << ",\"severity\":" << v.severity << ",\"score\":" << v.score
       << ",\"detail\":";
    json_escape(os, v.detail);
    os << "}";
  }
  os << "],\"rank_post_factor\":[";
  for (std::size_t i = 0; i < rank_post_factor.size(); ++i) {
    if (i > 0) os << ",";
    os << rank_post_factor[i];
  }
  os << "],\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkUsage& u = links[i];
    if (i > 0) os << ",";
    os << "{\"link\":" << u.link << ",\"transfers\":" << u.transfers
       << ",\"min_excess\":" << u.min_excess
       << ",\"mean_excess\":" << u.mean_excess << ",\"stuck\":" << u.stuck
       << "}";
  }
  os << "],\"stuck\":[";
  for (std::size_t i = 0; i < stuck.size(); ++i) {
    const StuckTransfer& t = stuck[i];
    if (i > 0) os << ",";
    os << "{\"src\":" << t.src << ",\"dst\":" << t.dst
       << ",\"tag\":" << t.tag << ",\"bytes\":" << t.bytes << "}";
  }
  os << "],\"transfers_observed\":" << transfers_observed
     << ",\"events_analyzed\":" << events_analyzed
     << ",\"events_dropped\":" << events_dropped
     << ",\"watchdog_retries\":" << watchdog_retries
     << ",\"critical_path\":[";
  for (std::size_t i = 0; i < critical_path.size(); ++i) {
    if (i > 0) os << ",";
    os << critical_path[i];
  }
  os << "],\"critical_path_span\":" << critical_path_span
     << ",\"total_slack\":" << total_slack << "}";
  return os.str();
}

}  // namespace aapc::flight
