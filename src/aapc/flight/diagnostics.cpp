#include "aapc/flight/diagnostics.hpp"

#include <sstream>

namespace aapc::flight {

std::string format_transfer(std::int32_t src, std::int32_t dst,
                            std::int32_t tag, std::int64_t bytes) {
  std::ostringstream os;
  os << "rank " << src << " -> rank " << dst << " tag=" << tag
     << " bytes=" << bytes;
  return os.str();
}

std::string format_pending(const PendingRequest& request) {
  std::ostringstream os;
  os << "pending " << (request.is_send ? "send to rank " : "recv from rank ")
     << request.peer << " tag=" << request.tag << " bytes=" << request.bytes
     << (request.matched ? " (matched, in flight)" : " (unmatched)");
  return os.str();
}

std::string format_link(const topology::Topology& topo, topology::LinkId link,
                        std::int32_t bridge_link) {
  std::ostringstream os;
  os << "link " << link;
  if (link >= 0 && link < topo.link_count()) {
    const auto [a, b] = topo.link_endpoints(link);
    os << " (" << topo.name(a) << " - " << topo.name(b) << ")";
  }
  if (bridge_link >= 0) {
    os << " [bridge link " << bridge_link << "]";
  }
  return os.str();
}

std::string StallDiagnostic::to_string() const {
  std::ostringstream os;
  os << "deadlock in program set '" << program_set
     << "': every live rank is blocked and the network is idle";
  for (const BlockedRank& rank : blocked) {
    os << "\n  rank " << rank.rank << ": " << rank.state
       << " at pc=" << rank.pc << "/" << rank.program_size
       << ", clock=" << rank.clock << " s";
    for (const PendingRequest& request : rank.pending) {
      os << "\n    " << format_pending(request);
    }
    const auto listed = static_cast<std::int64_t>(rank.pending.size());
    if (rank.pending_total > listed) {
      os << "\n    ... " << (rank.pending_total - listed)
         << " more pending request(s)";
    }
  }
  for (const StuckTransfer& t : stuck) {
    os << "\n  stuck transfer: "
       << format_transfer(t.src, t.dst, t.tag, t.bytes) << " (" << t.remaining
       << " bytes undelivered at rate 0 — link down?)";
  }
  return os.str();
}

std::string AbortDiagnostic::to_string() const {
  std::ostringstream os;
  os << "transfer aborted after " << attempts << " attempt(s): "
     << format_transfer(transfer.src, transfer.dst, transfer.tag,
                        transfer.bytes)
     << " (" << transfer.remaining << " bytes undelivered; timeout=" << timeout
     << " s, retries exhausted — link down?)";
  return os.str();
}

}  // namespace aapc::flight
