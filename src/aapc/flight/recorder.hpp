// Flight recorder: always-on, bounded-memory per-rank ring logs of
// executor events (Megatrace-style). Each rank owns a lock-free
// fixed-capacity ring (single writer per rank, power-of-two slots,
// overwrite-oldest); the executor records compact binary events —
// send/recv post and completion, sync-token wait/release, watchdog
// retry — stamped with sim-time and, when the recorder is annotated
// with a schedule + sync plan, the phase/message ids. A snapshot can
// run concurrently with writers (seqlock-style: entries that may have
// been overwritten mid-copy are discarded, never returned torn).
//
// The recorder never influences the simulation: recording is a handful
// of relaxed atomic stores, and ExecutorParams::flight == nullptr (the
// default) keeps the executor on a bit-identical recorder-free path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace aapc::obs {
class Registry;
}  // namespace aapc::obs

namespace aapc::core {
struct Schedule;
}  // namespace aapc::core

namespace aapc::sync {
struct SyncPlan;
}  // namespace aapc::sync

namespace aapc::flight {

/// What happened. Each kind pairs the event time with a kind-specific
/// second timestamp in Event::aux — together they bound the interval
/// the analyzer attributes (post cost, drain time, wait span).
enum class EventKind : std::uint8_t {
  /// ISEND posted; aux = rank clock before the post, so
  /// time - aux = send_overhead x cpu_factor (straggler signal).
  kSendPost = 1,
  /// IRECV posted; aux = rank clock before the post.
  kRecvPost = 2,
  /// Flow drained, sender view; aux = flow activation time, so
  /// time - aux = network drain duration (link-health signal).
  kSendComplete = 3,
  /// Payload delivered, receiver view; aux = the recv's post_ready.
  kRecvComplete = 4,
  /// Rank blocked waiting on a sync-token recv; aux = post_ready.
  kSyncWait = 5,
  /// Sync token delivered (next-phase send unblocked); aux = post_ready.
  kSyncRelease = 6,
  /// Watchdog canceled and reposted a stuck transfer; aux = the start
  /// time of the aborted attempt.
  kWatchdogRetry = 7,
};
inline constexpr std::uint8_t kEventKindMax = 7;
const char* kind_name(EventKind kind);

/// One recorded event (decoded form; rings store it packed into four
/// 64-bit words — see pack_event for the narrowing that implies:
/// phase < 32768, bytes < 4 GiB, aux kept as an f32 offset from time).
struct Event {
  EventKind kind = EventKind::kSendPost;
  std::int32_t peer = -1;
  std::int32_t tag = 0;
  std::int64_t bytes = 0;
  /// Simulated time of the event.
  double time = 0;
  /// Kind-specific second timestamp (see EventKind).
  double aux = 0;
  /// Schedule phase / message index; -1 unless the recorder was
  /// annotated (annotate()) and the event maps to a scheduled message.
  std::int32_t phase = -1;
  std::int32_t message = -1;
};

/// Lock-free single-writer ring of Events. Slots are four atomic words;
/// the writer publishes a monotonic head counter with release order
/// after filling a slot, so a concurrent snapshot never observes a torn
/// entry it keeps: any entry whose slot could have been rewritten
/// during the copy is dropped (counted in the returned drop total).
class Ring {
 public:
  static constexpr std::uint32_t kWordsPerSlot = 4;

  /// `capacity` is rounded up to a power of two (minimum 8).
  explicit Ring(std::uint32_t capacity);

  Ring(Ring&&) noexcept = default;
  Ring& operator=(Ring&&) noexcept = default;

  std::uint32_t capacity() const { return capacity_; }
  /// Total events ever pushed (monotonic).
  std::uint64_t pushed() const {
    return head_().load(std::memory_order_acquire);
  }

  /// Single-writer append; overwrites the oldest entry when full.
  /// Defined inline below — this is the simulator's hot path, and the
  /// packing must fuse with the caller's field computations.
  void push(const Event& event) noexcept;

  /// Copies the retained events, oldest first, into `out` (replacing
  /// its contents). Safe to run concurrently with push (one writer);
  /// returns the number of events not retained — overwritten by ring
  /// wraparound or discarded as potentially torn.
  std::uint64_t snapshot(std::vector<Event>& out) const;

 private:
  // words_[0] = head (entries published, complete and readable),
  // words_[1] = begin (first entry index whose slot is still intact),
  // words_[2..] = slots. The writer advances begin *before* clobbering
  // a wrapped slot (release fence), so a reader that copied clobbered
  // words is guaranteed to also observe the advanced begin and discard
  // them — a quiescent full ring retains all `capacity` entries. The
  // cursors live in the slots' allocation so the push hot path chases
  // one pointer, and the heap keeps them address-stable while Ring
  // stays movable (vector<Ring> growth).
  static constexpr std::size_t kCursorWords = 2;
  std::atomic<std::uint64_t>& head_() const { return words_[0]; }
  std::atomic<std::uint64_t>& begin_() const { return words_[1]; }
  std::atomic<std::uint64_t>* slots_() const {
    return words_.get() + kCursorWords;
  }

  std::uint32_t capacity_ = 0;
  std::uint32_t mask_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

namespace detail {

inline std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double bits_double(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

inline std::uint32_t float_bits(float v) {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline float bits_float(std::uint32_t bits) {
  float v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Slot layout (four words = 32 bytes, half a cache line, so each event
// costs 6 stores and at most one dirty line):
//   w0 = kind u8 | phase i16 << 16 | bytes u32 << 32
//   w1 = peer u32 | tag u32 << 32
//   w2 = message u32 | f32(time - aux) bits << 32
//   w3 = time f64 bits
// The tight packing narrows three fields relative to Event, all far
// beyond what simulations produce: phase is sign-extended i16 (valid
// for phase in [-1, 32767]; even 4096-rank schedules stay below ~2 x
// ranks phases), bytes saturates at 4 GiB - 1 per message, and aux is
// reconstructed as time - delta with delta in f32 (~7 significant
// digits on an interval that is microseconds to milliseconds long —
// the analyzer consumes only such intervals). The dump file format
// (FORMATS.md section 5) is unaffected: it serializes decoded Events
// at full width.
inline void pack_event(const Event& e,
                       std::uint64_t out[Ring::kWordsPerSlot]) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(
      std::min<std::int64_t>(std::max<std::int64_t>(e.bytes, 0), 0xFFFFFFFF));
  out[0] = static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.kind)) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(e.phase))
            << 16) |
           (bytes << 32);
  out[1] = static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.peer)) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.tag))
            << 32);
  out[2] =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.message)) |
      (static_cast<std::uint64_t>(
           float_bits(static_cast<float>(e.time - e.aux)))
       << 32);
  out[3] = double_bits(e.time);
}

inline Event unpack_event(const std::uint64_t w[Ring::kWordsPerSlot]) {
  Event e;
  e.kind = static_cast<EventKind>(static_cast<std::uint8_t>(w[0]));
  e.phase = static_cast<std::int16_t>(static_cast<std::uint16_t>(w[0] >> 16));
  e.bytes = static_cast<std::int64_t>(w[0] >> 32);
  e.peer = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[1]));
  e.tag = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[1] >> 32));
  e.message = static_cast<std::int32_t>(static_cast<std::uint32_t>(w[2]));
  e.time = bits_double(w[3]);
  e.aux = e.time - static_cast<double>(
                       bits_float(static_cast<std::uint32_t>(w[2] >> 32)));
  return e;
}

}  // namespace detail

inline void Ring::push(const Event& event) noexcept {
  std::uint64_t packed[kWordsPerSlot];
  detail::pack_event(event, packed);
  const std::uint64_t head = head_().load(std::memory_order_relaxed);
  if (head >= capacity_) {
    // About to clobber the slot of entry head - capacity: retire it
    // first, with a release fence so the slot stores below cannot
    // become visible before the retirement (pairs with the acquire
    // fence in snapshot).
    begin_().store(head - capacity_ + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  std::atomic<std::uint64_t>* slot =
      slots_() + static_cast<std::size_t>(head & mask_) * kWordsPerSlot;
  for (std::uint32_t w = 0; w < kWordsPerSlot; ++w) {
    slot[w].store(packed[w], std::memory_order_relaxed);
  }
  // Release-publish: a snapshot that observes head > i has the complete
  // words of entry i (unless the slot was since rewritten — handled by
  // the begin cursor above).
  head_().store(head + 1, std::memory_order_release);
  // Events on one rank arrive in bursts: start fetching the next
  // slot's line for write now so the burst's next push doesn't stall
  // on it.
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(
      slots_() + static_cast<std::size_t>((head + 1) & mask_) * kWordsPerSlot,
      1);
#endif
}

struct RecorderParams {
  /// Slots per rank ring; rounded up to a power of two. The default
  /// (32 KiB of slots per rank) retains every event of a scheduled
  /// alltoall on fabrics up to ~256 ranks while keeping each ring's
  /// working set cache-resident — ring footprint, not the per-event
  /// stores, dominates recorder overhead once rings outgrow the cache
  /// (see EXPERIMENTS.md section E13). Larger fabrics overwrite oldest
  /// first; the analyzer accepts partially overwritten rings.
  std::uint32_t ring_capacity = 1024;
};

/// Per-rank event recorder the executor writes through
/// (ExecutorParams::flight). One Ring per rank; each rank's events are
/// recorded by at most one thread at a time (the deterministic executor
/// is single-threaded; rings tolerate one writer each regardless).
class Recorder {
 public:
  explicit Recorder(std::int32_t rank_count, const RecorderParams& params = {});

  std::int32_t rank_count() const {
    return static_cast<std::int32_t>(rings_.size());
  }
  std::uint32_t ring_capacity() const {
    return rings_.empty() ? 0 : rings_.front().capacity();
  }
  std::int32_t sync_tag_base() const { return sync_tag_base_; }

  /// Installs the (src, dst) -> (phase, message) and sync-tag ->
  /// (phase, gated message) maps so subsequent events carry schedule
  /// coordinates. Tags >= `sync_tag_base` are sync tokens, numbered
  /// base + (index into plan.edges) — the lowering's convention. Call
  /// before the run; the maps are read-only while recording.
  void annotate(const core::Schedule& schedule, const sync::SyncPlan& plan,
                std::int32_t sync_tag_base = 1 << 20);

  /// Hot path: packs and appends one event to `rank`'s ring.
  void record(std::int32_t rank, EventKind kind, std::int32_t peer,
              std::int32_t tag, std::int64_t bytes, double time, double aux) {
    Event event{kind, peer, tag, bytes, time, aux, -1, -1};
    if (annotated_) stamp_annotation(rank, event);
    rings_[static_cast<std::size_t>(rank)].push(event);
  }

  /// Total events recorded across all rings.
  std::uint64_t total_recorded() const;

  /// Snapshot of one rank's ring (see Ring::snapshot).
  std::uint64_t snapshot_rank(std::int32_t rank, std::vector<Event>& out) const;

  /// Exports aapc_flight_* series: events/dropped totals (set to the
  /// recorder's cumulative counts) and peak ring occupancy.
  void publish_metrics(obs::Registry& registry) const;

 private:
  void stamp_annotation(std::int32_t rank, Event& event) const;

  /// "No annotation" sentinel for the coordinate tables (a real
  /// coordinate of phase 0 / message 0 packs to 0, so 0 cannot mark
  /// absence).
  static constexpr std::uint64_t kNoCoord = ~std::uint64_t{0};

  std::vector<Ring> rings_;
  bool annotated_ = false;
  std::int32_t sync_tag_base_ = 1 << 20;
  // Flat lookup tables, filled by annotate(): record() runs per
  // simulated event, and hash lookups there dominate the recorder's
  // overhead. Entries are (phase u32 << 32 | message u32) or kNoCoord.
  /// Indexed by src * rank_count + dst.
  std::vector<std::uint64_t> data_table_;
  /// Indexed by tag - sync_tag_base (one entry per sync-plan edge).
  std::vector<std::uint64_t> sync_table_;
};

}  // namespace aapc::flight
