#include "aapc/flight/recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "aapc/common/error.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/sync/sync_plan.hpp"

namespace aapc::flight {


const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSendPost: return "send_post";
    case EventKind::kRecvPost: return "recv_post";
    case EventKind::kSendComplete: return "send_complete";
    case EventKind::kRecvComplete: return "recv_complete";
    case EventKind::kSyncWait: return "sync_wait";
    case EventKind::kSyncRelease: return "sync_release";
    case EventKind::kWatchdogRetry: return "watchdog_retry";
  }
  return "?";
}

Ring::Ring(std::uint32_t capacity) {
  capacity_ = std::max<std::uint32_t>(8, std::bit_ceil(capacity));
  mask_ = capacity_ - 1;
  words_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(capacity_) * kWordsPerSlot + kCursorWords);
  head_().store(0, std::memory_order_relaxed);
  begin_().store(0, std::memory_order_relaxed);
}


std::uint64_t Ring::snapshot(std::vector<Event>& out) const {
  out.clear();
  const std::uint64_t published = head_().load(std::memory_order_acquire);
  const std::uint64_t first =
      published > capacity_ ? published - capacity_ : 0;
  std::vector<std::uint64_t> copy;
  copy.reserve(static_cast<std::size_t>(published - first) * kWordsPerSlot);
  for (std::uint64_t i = first; i < published; ++i) {
    const std::atomic<std::uint64_t>* slot =
        slots_() + static_cast<std::size_t>(i & mask_) * kWordsPerSlot;
    for (std::uint32_t w = 0; w < kWordsPerSlot; ++w) {
      copy.push_back(slot[w].load(std::memory_order_relaxed));
    }
  }
  // A writer that wrapped during the copy may have rewritten the slots
  // of the oldest entries (entry i shares a slot with entry
  // i + capacity). The writer retires entry i via begin_ *before*
  // touching its slot, so after the acquire fence (pairing with
  // push()'s release fence) any entry whose copy could be torn is
  // already excluded by begin_. A quiescent full ring retains all
  // `capacity` entries.
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t safe_first = begin_().load(std::memory_order_relaxed);
  const std::uint64_t begin = std::max(first, safe_first);
  if (begin < published) {
    out.reserve(static_cast<std::size_t>(published - begin));
  }
  for (std::uint64_t i = begin; i < published; ++i) {
    out.push_back(
        detail::unpack_event(&copy[static_cast<std::size_t>(i - first) *
                           kWordsPerSlot]));
  }
  return published - static_cast<std::uint64_t>(out.size());
}

Recorder::Recorder(std::int32_t rank_count, const RecorderParams& params) {
  AAPC_REQUIRE(rank_count > 0, "flight recorder needs >= 1 rank, got "
                                   << rank_count);
  rings_.reserve(static_cast<std::size_t>(rank_count));
  for (std::int32_t r = 0; r < rank_count; ++r) {
    rings_.emplace_back(params.ring_capacity);
  }
}

void Recorder::annotate(const core::Schedule& schedule,
                        const sync::SyncPlan& plan,
                        std::int32_t sync_tag_base) {
  AAPC_REQUIRE(sync_tag_base > 0, "sync_tag_base must be positive");
  sync_tag_base_ = sync_tag_base;
  const std::int32_t ranks = rank_count();
  data_table_.assign(
      static_cast<std::size_t>(ranks) * static_cast<std::size_t>(ranks),
      kNoCoord);
  for (std::size_t i = 0; i < schedule.messages.size(); ++i) {
    const core::ScheduledMessage& m = schedule.messages[i];
    if (m.message.src < 0 || m.message.src >= ranks || m.message.dst < 0 ||
        m.message.dst >= ranks) {
      continue;
    }
    data_table_[static_cast<std::size_t>(m.message.src) *
                    static_cast<std::size_t>(ranks) +
                static_cast<std::size_t>(m.message.dst)] =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.phase))
         << 32) |
        static_cast<std::uint32_t>(static_cast<std::int32_t>(i));
  }
  sync_table_.assign(plan.edges.size(), kNoCoord);
  for (std::size_t i = 0; i < plan.edges.size(); ++i) {
    const std::int32_t gated = plan.edges[i].to;
    if (gated < 0 ||
        gated >= static_cast<std::int32_t>(schedule.messages.size())) {
      continue;
    }
    sync_table_[i] =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             schedule.messages[static_cast<std::size_t>(gated)].phase))
         << 32) |
        static_cast<std::uint32_t>(gated);
  }
  annotated_ = true;
}

void Recorder::stamp_annotation(std::int32_t rank, Event& event) const {
  std::uint64_t coords = kNoCoord;
  if (event.tag >= sync_tag_base_) {
    const auto idx =
        static_cast<std::size_t>(event.tag - sync_tag_base_);
    if (idx >= sync_table_.size()) return;
    coords = sync_table_[idx];
  } else {
    // Map the transfer to its scheduled (src, dst): the recording rank
    // is the sender for send-side kinds and the receiver otherwise.
    std::int32_t src = rank;
    std::int32_t dst = event.peer;
    if (event.kind == EventKind::kRecvPost ||
        event.kind == EventKind::kRecvComplete) {
      src = event.peer;
      dst = rank;
    }
    const std::int32_t ranks = rank_count();
    if (src < 0 || src >= ranks || dst < 0 || dst >= ranks) return;
    coords = data_table_[static_cast<std::size_t>(src) *
                             static_cast<std::size_t>(ranks) +
                         static_cast<std::size_t>(dst)];
  }
  if (coords == kNoCoord) return;
  event.phase = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(coords >> 32));
  event.message =
      static_cast<std::int32_t>(static_cast<std::uint32_t>(coords));
}

std::uint64_t Recorder::total_recorded() const {
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) total += ring.pushed();
  return total;
}

std::uint64_t Recorder::snapshot_rank(std::int32_t rank,
                                      std::vector<Event>& out) const {
  AAPC_REQUIRE(rank >= 0 && rank < rank_count(),
               "flight snapshot of nonexistent rank " << rank);
  return rings_[static_cast<std::size_t>(rank)].snapshot(out);
}

void Recorder::publish_metrics(obs::Registry& registry) const {
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
  std::uint64_t peak = 0;
  for (const Ring& ring : rings_) {
    const std::uint64_t pushed = ring.pushed();
    total += pushed;
    const std::uint64_t kept =
        std::min<std::uint64_t>(pushed, ring.capacity());
    dropped += pushed - kept;
    peak = std::max(peak, kept);
  }
  registry
      .counter("aapc_flight_events_total",
               "Events recorded across all rank rings")
      .set_total(static_cast<std::int64_t>(total));
  registry
      .counter("aapc_flight_dropped_total",
               "Events lost to ring-buffer overwrite")
      .set_total(static_cast<std::int64_t>(dropped));
  registry
      .gauge("aapc_flight_ring_peak_occupancy",
             "Most-filled rank ring, in events")
      .set_max(static_cast<double>(peak));
  registry
      .gauge("aapc_flight_rings", "Rank rings allocated by the recorder")
      .set(static_cast<double>(rank_count()));
}

}  // namespace aapc::flight
