// Offline root-cause analysis over a flight dump (Megatrace-style).
//
// flight::analyze() reconstructs what the run did from the per-rank
// event rings alone: per-rank CPU post costs (exact multiples of the
// configured overheads, so a straggler's factor is recoverable), per
// data-transfer drain excess versus the calibrated expected duration
// (bytes / effective bandwidth), transfers that never completed, and —
// when the schedule and sync plan are available — the phase dependence
// graph, giving per-message ready times, slack, and the critical path.
//
// The output is a ranked list of typed verdicts:
//   * straggler rank  — post costs well above the fleet median;
//   * degraded link   — every transfer crossing it drains slow (the
//                       minimum excess filters out contention noise:
//                       one fast transfer exonerates the link);
//   * down link       — on the path of every stuck transfer;
//   * lossy transport — link evidence on a packet-backend run that
//                       counted retransmissions; judged by the link's
//                       lower-quartile excess, since stochastic loss
//                       spares the occasional transfer.
// Thresholds are normalized against the healthy population in the same
// dump, so the analyzer needs no absolute calibration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/flight/diagnostics.hpp"
#include "aapc/flight/dump.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {
struct Schedule;
}  // namespace aapc::core

namespace aapc::sync {
struct SyncPlan;
}  // namespace aapc::sync

namespace aapc::stp {
struct SpanningTree;
}  // namespace aapc::stp

namespace aapc::flight {

enum class VerdictKind : std::uint8_t {
  kStragglerRank = 1,
  kDegradedLink = 2,
  kDownLink = 3,
  kLossyTransport = 4,
};
const char* verdict_kind_name(VerdictKind kind);

/// One ranked finding. Exactly one of `rank` / `link` is set (>= 0)
/// depending on the kind.
struct Verdict {
  VerdictKind kind = VerdictKind::kStragglerRank;
  std::int32_t rank = -1;
  topology::LinkId link = -1;
  /// The bridge link realizing `link` (SpanningTree::bridge_link_of),
  /// -1 when no spanning tree was supplied or the link is an access
  /// link.
  std::int32_t bridge_link = -1;
  /// Estimated magnitude: slowdown factor (straggler), drain excess
  /// factor (degraded/lossy), stuck-transfer count (down).
  double severity = 0;
  /// Ranking key; higher is more certain/urgent. Down links rank above
  /// everything (the run did not finish because of them).
  double score = 0;
  /// Human-readable evidence, built from the shared diagnostics
  /// formatters.
  std::string detail;
};

/// Per-link aggregate over observed data transfers.
struct LinkUsage {
  topology::LinkId link = -1;
  std::int64_t transfers = 0;
  /// min over transfers of (observed drain / expected drain). A healthy
  /// link's fastest transfer is ~1; a degraded link slows every
  /// transfer, so even the minimum stays high.
  double min_excess = 0;
  double mean_excess = 0;
  std::int64_t stuck = 0;
};

struct AnalyzeOptions {
  /// A rank is a straggler when its normalized post-cost factor
  /// reaches this (1.3 = 30% above the fleet).
  double straggler_threshold = 1.3;
  /// A link is degraded when its normalized min excess reaches this.
  double link_excess_threshold = 1.25;
  /// Post-cost estimates prefer the last `recent_window` posts so a
  /// late-onset straggler is still caught from an overwritten ring.
  std::int32_t recent_window = 16;
};

struct AnalysisReport {
  /// Ranked findings, most confident first. Empty = healthy run.
  std::vector<Verdict> verdicts;
  /// Per-rank estimated CPU cost factor (1.0 = nominal), NaN-free;
  /// 0 when a rank produced no post events.
  std::vector<double> rank_post_factor;
  /// Links carrying at least one observed data transfer.
  std::vector<LinkUsage> links;
  /// Data transfers posted but never completed (evidence for down
  /// links), sorted by (src, dst, tag).
  std::vector<StuckTransfer> stuck;
  std::int64_t transfers_observed = 0;
  std::int64_t events_analyzed = 0;
  std::int64_t events_dropped = 0;
  std::int64_t watchdog_retries = 0;

  // ---- dependence-graph reconstruction (schedule + plan supplied) ----
  /// Message ids along the critical path, in completion order.
  std::vector<std::int32_t> critical_path;
  /// Wall-clock span of the critical path (first activation to last
  /// completion).
  double critical_path_span = 0;
  /// Sum over observed messages of activation - ready slack.
  double total_slack = 0;
  /// Per-rank slack summed over messages the rank sent.
  std::vector<double> rank_slack;

  /// One line per verdict ("straggler_rank: rank 3 ...").
  std::string summary() const;
  /// The full report as a JSON object.
  std::string to_json() const;
};

/// Analyzes `dump` against the topology it ran on. `schedule`, `plan`,
/// and `tree` are optional refinements: schedule+plan enable the
/// dependence-graph/slack reconstruction (and phase attribution in
/// details), `tree` maps culprit links back to bridge links.
AnalysisReport analyze(const FlightDump& dump,
                       const topology::Topology& topo,
                       const core::Schedule* schedule = nullptr,
                       const sync::SyncPlan* plan = nullptr,
                       const stp::SpanningTree* tree = nullptr,
                       const AnalyzeOptions& options = {});

}  // namespace aapc::flight
