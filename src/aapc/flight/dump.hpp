// Versioned binary dump of a flight recorder's rings plus the run
// context the analyzer needs (docs/FORMATS.md §5). A dump is taken with
// snapshot() at run end or after TransferAborted / ExecutionStalled —
// the rings are valid either way, which is the point of a flight
// recorder: the evidence survives the crash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "aapc/flight/recorder.hpp"

namespace aapc::flight {

inline constexpr std::uint64_t kDumpMagic = 0x31544C4643504141ull;  // "AAPCFLT1"
inline constexpr std::uint16_t kDumpVersion = 1;

/// Run context stamped into the dump header. The caller fills the
/// network calibration (the analyzer's expected-duration baseline) and
/// outcome fields; snapshot() fills the recorder geometry.
struct DumpMeta {
  std::int32_t rank_count = 0;
  std::uint32_t ring_capacity = 0;
  /// 0 = fluid backend, 1 = packet backend.
  std::uint8_t backend = 0;
  /// Tags >= this are sync tokens (lowering convention, 2^20).
  std::int32_t sync_tag_base = 1 << 20;
  /// Per-link goodput after protocol overhead, bytes/sec — what one
  /// uncontended transfer should drain at.
  double effective_bandwidth = 0;
  double send_overhead = 0;
  double recv_overhead = 0;
  /// 0 when the run aborted or stalled before completing.
  double completion_time = 0;
  /// Packet-backend loss counters (0 on fluid runs).
  std::int64_t retransmissions = 0;
  std::int64_t segments_lost = 0;
  /// Free-form run label ("netprobe --faults plan.json", ...).
  std::string label;
};

/// One rank's retained events (oldest first) and its overwrite count.
struct RankLog {
  std::uint64_t dropped = 0;
  std::vector<Event> events;
};

struct FlightDump {
  DumpMeta meta;
  std::vector<RankLog> ranks;
};

/// Coherently snapshots every ring of `recorder` into a dump. `meta`
/// provides the run context; rank_count/ring_capacity are overwritten
/// from the recorder.
FlightDump snapshot(const Recorder& recorder, DumpMeta meta);

/// Binary encoding (little-endian, docs/FORMATS.md §5).
std::string encode_dump(const FlightDump& dump);

/// Decodes and validates a dump; throws InvalidArgument on bad magic,
/// unknown version, truncation, trailing bytes, or out-of-range record
/// counts / event kinds.
FlightDump decode_dump(std::string_view bytes);

/// File round-trip (throws Error on IO failure).
void write_dump_file(const FlightDump& dump, const std::string& path);
FlightDump read_dump_file(const std::string& path);

}  // namespace aapc::flight
