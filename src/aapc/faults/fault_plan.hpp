// Deterministic fault plans: scripted timelines of link and node
// faults injected into the simulation stack end to end.
//
// A FaultPlan is pure data — a list of (time, event) records — so a
// given plan plus the executor's seeds reproduces a run bit for bit.
// Link events are scripted in *plan link space*: either topology
// LinkIds directly (plain trees, the identity mapping) or bridge-link
// indices of a stp::BridgeNetwork, translated onto whichever spanning
// tree is in force via SpanningTree::link_of_bridge_link (see
// compile()'s link_map). That translation is what lets one physical
// fault timeline follow a schedule across a repair re-election.
//
// compile() lowers a plan to the executor's generic fault primitives:
// simnet::LinkCapacityEvent (time-varying capacities) and
// mpisim::RankFault (straggler slowdown, crash-stop), plus
// human-readable FaultMarkers for the Chrome trace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/mpisim/executor.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::faults {

using topology::Rank;

enum class FaultKind : std::uint8_t {
  kLinkDegrade,   // link capacity := factor * nominal
  kLinkDown,      // link capacity := 0
  kLinkUp,        // link capacity := nominal (restoration)
  kNodeSlowdown,  // rank CPU-time costs *= factor, from `when` on
  kNodeCrash,     // rank crash-stops at `when`
};

/// One scripted event. Use the named constructors; only the fields
/// relevant to `kind` are meaningful.
struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegrade;
  SimTime when = 0;
  /// Link events: index in plan link space (see file comment).
  std::int32_t link = -1;
  /// Node events: machine rank.
  Rank rank = -1;
  /// kLinkDegrade: remaining capacity fraction in (0, 1];
  /// kNodeSlowdown: CPU-time multiplier >= 1.
  double factor = 1.0;

  static FaultEvent link_degrade(SimTime when, std::int32_t link,
                                 double fraction);
  static FaultEvent link_down(SimTime when, std::int32_t link);
  static FaultEvent link_up(SimTime when, std::int32_t link);
  static FaultEvent node_slowdown(SimTime when, Rank rank, double multiplier);
  static FaultEvent node_crash(SimTime when, Rank rank);

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A scripted fault timeline. Events may be added in any order;
/// consumers see them time-sorted (stable among equal times).
struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& add(const FaultEvent& event) {
    events.push_back(event);
    return *this;
  }
  bool empty() const { return events.empty(); }

  /// Time of the earliest event (the fault onset); 0 for an empty plan.
  SimTime onset() const;

  /// Throws InvalidArgument on malformed events (negative time, bad
  /// ids, factors out of range).
  void validate() const;

  /// Validated, time-sorted copy (stable among equal times).
  FaultPlan sorted() const;
};

/// Executor-ready lowering of a plan.
struct CompiledFaults {
  std::vector<simnet::LinkCapacityEvent> capacity_events;
  std::vector<mpisim::RankFault> rank_faults;
  std::vector<mpisim::FaultMarker> markers;

  /// Appends the compiled faults onto executor params.
  void apply(mpisim::ExecutorParams& params) const;
};

/// Compiles `plan` for a network of `link_count` physical links with
/// nominal capacities from `params`. `link_map` translates plan link
/// indices to topology LinkIds — pass SpanningTree::link_of_bridge_link
/// for plans scripted against bridge links; events whose link maps to
/// -1 (blocked / not in this tree) are dropped. An empty map is the
/// identity (plan links ARE topology links).
CompiledFaults compile(const FaultPlan& plan,
                       const simnet::NetworkParams& params,
                       std::int32_t link_count,
                       const std::vector<std::int32_t>& link_map = {});

/// Plan-space link state at time `t`: capacity fraction per plan link
/// (1 = nominal, 0 = down), from replaying link events with when <= t.
std::vector<double> link_factors_at(const FaultPlan& plan, SimTime t,
                                    std::int32_t link_count);

/// Ranks whose crash time is <= t, ascending.
std::vector<Rank> ranks_crashed_at(const FaultPlan& plan, SimTime t);

/// The culprits a plan injects, for closed-loop verification against
/// flight::analyze() verdicts: which links end up degraded (factor in
/// (0, 1)) or down (factor 0) once the whole timeline has played out,
/// and which ranks straggle or crash. Links are in plan link space —
/// map through the same link_map handed to compile() when comparing
/// against topology LinkIds.
struct FaultSummary {
  std::vector<std::int32_t> degraded_links;
  std::vector<std::int32_t> down_links;
  std::vector<Rank> straggler_ranks;
  std::vector<Rank> crashed_ranks;
};

/// Summarizes the plan's end state over `link_count` plan links (all
/// vectors sorted ascending, deduplicated).
FaultSummary summarize(const FaultPlan& plan, std::int32_t link_count);

/// JSON round-trip:
///   {"events":[
///     {"kind":"link_degrade","time_ms":120.0,"link":3,"factor":0.5},
///     {"kind":"link_down","time_ms":10,"link":0},
///     {"kind":"link_up","time_ms":50,"link":0},
///     {"kind":"node_slowdown","time_ms":0,"rank":2,"factor":3.0},
///     {"kind":"node_crash","time_ms":80,"rank":1}]}
std::string fault_plan_to_json(const FaultPlan& plan);
FaultPlan fault_plan_from_json(std::string_view json);

}  // namespace aapc::faults
