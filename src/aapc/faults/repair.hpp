// Schedule repair on the residual topology.
//
// When a link degrades or fails, the paper's contention-free schedule
// keeps routing every message over the tree it was built for — the
// bottleneck link's loss is the whole operation's loss. Bridged
// Ethernet LANs, however, usually carry *redundant* links that STP
// blocks in normal operation (§3: "the physical topology is always a
// tree" — of the healthy network). Repair re-runs the 802.1D election
// with fault-aware link costs, producing the residual tree the real
// protocol would converge to, and reschedules the not-yet-sent phases
// of the AAPC on it (greedy first-fit: the schedule remainder is an
// arbitrary pattern, not the complete AAPC the optimal scheduler
// requires).
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/faults/fault_plan.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/stp/stp.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::faults {

/// Re-runs the STP election on the residual bridge graph at time `t`:
/// bridge links down at `t` are removed; degraded links stay eligible
/// but their path cost is divided by the remaining capacity fraction
/// (a half-speed link costs twice as much — the 802.1D cost-inverse-
/// to-bandwidth convention), so a healthy redundant link that STP
/// normally blocks wins the port election once the primary degrades.
/// The returned forwarding / link_of_bridge_link vectors use the
/// ORIGINAL bridge-link indexing (removed links: blocked / -1).
/// Throws InvalidArgument if the residual graph is disconnected.
stp::SpanningTree elect_residual(const stp::BridgeNetwork& network,
                                 const FaultPlan& plan, SimTime t);

/// Theoretical peak aggregate AAPC throughput (payload bytes/sec) of a
/// tree whose physical links run at `link_capacity` (raw bytes/sec):
///   min over directed edges e of  P * capacity(e) * protocol_eff / n_e
/// where P = |M|(|M|-1) ordered pairs and n_e = pairs whose path
/// crosses e. This is the link-capacity bound the harness plots as
/// "Peak" generalized to heterogeneous (degraded) links; duplex and
/// fabric caps are deliberately excluded (same convention as the
/// paper's §3 peak formula). Returns 0 if any loaded link is down.
double aapc_peak_throughput(const topology::Topology& topo,
                            const simnet::NetworkParams& params,
                            const std::vector<double>& link_capacity);

/// Per-link raw capacities of `tree` under `plan` at time `t`:
/// nominal capacities from `params`, scaled by the plan's bridge-link
/// factors translated through tree.link_of_bridge_link. Machine access
/// links keep their nominal rate (plans script bridge links).
std::vector<double> residual_link_capacities(
    const stp::SpanningTree& tree, const simnet::NetworkParams& params,
    const FaultPlan& plan, SimTime t);

/// The repaired program for the un-executed tail of a schedule.
struct RepairResult {
  /// Election on the residual bridge graph (original link indexing).
  stp::SpanningTree residual;
  /// Messages of phases >= splice_phase, rescheduled on the residual
  /// tree by greedy first-fit (contention-free, phase count >= load).
  core::Schedule remainder;
  /// Wall-clock cost of the re-election + rescheduling — the *measured*
  /// repair latency, reported separately from the simulated timeline
  /// so results stay deterministic.
  double repair_wall_seconds = 0;
};

/// Repairs `schedule` at a phase boundary: re-elects the residual tree
/// at time `t` and reschedules every message of phases >=
/// `splice_phase`. The schedule must have been built for a tree elected
/// from this same `network` (ranks correspond by machine order).
RepairResult repair_schedule(const stp::BridgeNetwork& network,
                             const core::Schedule& schedule,
                             std::int32_t splice_phase,
                             const FaultPlan& plan, SimTime t);

}  // namespace aapc::faults
