#include "aapc/faults/repair.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "aapc/common/error.hpp"
#include "aapc/core/greedy.hpp"

namespace aapc::faults {

stp::SpanningTree elect_residual(const stp::BridgeNetwork& network,
                                 const FaultPlan& plan, SimTime t) {
  const std::vector<double> factors =
      link_factors_at(plan, t, network.bridge_link_count());
  // Rebuild the bridge graph with fault-aware costs; down links are
  // removed entirely (an 802.1D bridge stops seeing hellos on a dead
  // port). Keep a residual-index -> original-index map so the election
  // results can be reported in the caller's link numbering.
  stp::BridgeNetwork residual;
  for (stp::BridgeId b = 0; b < network.bridge_count(); ++b) {
    residual.add_bridge(network.bridge_name(b), network.bridge_identifier(b));
  }
  std::vector<std::int32_t> original_of_residual;
  for (std::size_t l = 0; l < network.links().size(); ++l) {
    const double factor = factors[l];
    if (factor <= 0) continue;  // down
    const auto& link = network.links()[l];
    const auto cost = static_cast<std::int32_t>(
        std::ceil(static_cast<double>(link.cost) / factor));
    residual.add_bridge_link(link.a, link.b, cost);
    original_of_residual.push_back(static_cast<std::int32_t>(l));
  }
  for (const auto& machine : network.machines()) {
    residual.add_machine(machine.name, machine.bridge);
  }

  stp::SpanningTree elected = stp::compute_spanning_tree(residual);

  // Re-index the per-link vectors to the original link numbering.
  std::vector<bool> forwarding(network.links().size(), false);
  std::vector<topology::LinkId> link_of(network.links().size(), -1);
  for (std::size_t r = 0; r < original_of_residual.size(); ++r) {
    const auto original =
        static_cast<std::size_t>(original_of_residual[r]);
    forwarding[original] = elected.forwarding[r];
    link_of[original] = elected.link_of_bridge_link[r];
  }
  elected.forwarding = std::move(forwarding);
  elected.link_of_bridge_link = std::move(link_of);
  return elected;
}

double aapc_peak_throughput(const topology::Topology& topo,
                            const simnet::NetworkParams& params,
                            const std::vector<double>& link_capacity) {
  AAPC_REQUIRE(link_capacity.size() ==
                   static_cast<std::size_t>(topo.link_count()),
               "capacity vector size " << link_capacity.size()
                                       << " != " << topo.link_count()
                                       << " links");
  const std::int32_t machines = topo.machine_count();
  AAPC_REQUIRE(machines >= 2, "peak needs at least two machines");
  // Per-directed-edge count of AAPC pairs crossing it.
  std::vector<std::int64_t> crossing(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (topology::Rank src = 0; src < machines; ++src) {
    for (topology::Rank dst = 0; dst < machines; ++dst) {
      if (src == dst) continue;
      for (const topology::EdgeId e :
           topo.path(topo.machine_node(src), topo.machine_node(dst))) {
        ++crossing[static_cast<std::size_t>(e)];
      }
    }
  }
  const double pairs =
      static_cast<double>(machines) * static_cast<double>(machines - 1);
  double peak = std::numeric_limits<double>::infinity();
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    const std::int64_t n = crossing[static_cast<std::size_t>(e)];
    if (n == 0) continue;
    const double effective =
        link_capacity[static_cast<std::size_t>(e / 2)] *
        params.protocol_efficiency;
    peak = std::min(peak, pairs * effective / static_cast<double>(n));
  }
  return peak == std::numeric_limits<double>::infinity() ? 0.0 : peak;
}

std::vector<double> residual_link_capacities(
    const stp::SpanningTree& tree, const simnet::NetworkParams& params,
    const FaultPlan& plan, SimTime t) {
  std::vector<double> capacity =
      params.link_capacities(tree.topology.link_count());
  const std::vector<double> factors = link_factors_at(
      plan, t,
      static_cast<std::int32_t>(tree.link_of_bridge_link.size()));
  for (std::size_t l = 0; l < tree.link_of_bridge_link.size(); ++l) {
    const topology::LinkId link = tree.link_of_bridge_link[l];
    if (link >= 0) {
      capacity[static_cast<std::size_t>(link)] *= factors[l];
    }
  }
  return capacity;
}

RepairResult repair_schedule(const stp::BridgeNetwork& network,
                             const core::Schedule& schedule,
                             std::int32_t splice_phase,
                             const FaultPlan& plan, SimTime t) {
  AAPC_REQUIRE(splice_phase >= 0 && splice_phase <= schedule.phase_count(),
               "splice phase " << splice_phase << " outside schedule with "
                               << schedule.phase_count() << " phases");
  const auto wall_start = std::chrono::steady_clock::now();
  RepairResult result;
  result.residual = elect_residual(network, plan, t);
  core::Pattern remainder_pattern;
  for (const core::ScheduledMessage& scheduled : schedule.messages) {
    if (scheduled.phase >= splice_phase) {
      remainder_pattern.push_back(scheduled.message);
    }
  }
  if (!remainder_pattern.empty()) {
    result.remainder =
        core::greedy_schedule(result.residual.topology, remainder_pattern);
  }
  result.repair_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return result;
}

}  // namespace aapc::faults
