#include "aapc/faults/fault_plan.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::faults {

FaultEvent FaultEvent::link_degrade(SimTime when, std::int32_t link,
                                    double fraction) {
  FaultEvent event;
  event.kind = FaultKind::kLinkDegrade;
  event.when = when;
  event.link = link;
  event.factor = fraction;
  return event;
}

FaultEvent FaultEvent::link_down(SimTime when, std::int32_t link) {
  FaultEvent event;
  event.kind = FaultKind::kLinkDown;
  event.when = when;
  event.link = link;
  event.factor = 0.0;
  return event;
}

FaultEvent FaultEvent::link_up(SimTime when, std::int32_t link) {
  FaultEvent event;
  event.kind = FaultKind::kLinkUp;
  event.when = when;
  event.link = link;
  event.factor = 1.0;
  return event;
}

FaultEvent FaultEvent::node_slowdown(SimTime when, Rank rank,
                                     double multiplier) {
  FaultEvent event;
  event.kind = FaultKind::kNodeSlowdown;
  event.when = when;
  event.rank = rank;
  event.factor = multiplier;
  return event;
}

FaultEvent FaultEvent::node_crash(SimTime when, Rank rank) {
  FaultEvent event;
  event.kind = FaultKind::kNodeCrash;
  event.when = when;
  event.rank = rank;
  return event;
}

namespace {

bool is_link_event(FaultKind kind) {
  return kind == FaultKind::kLinkDegrade || kind == FaultKind::kLinkDown ||
         kind == FaultKind::kLinkUp;
}

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade: return "link_degrade";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kNodeSlowdown: return "node_slowdown";
    case FaultKind::kNodeCrash: return "node_crash";
  }
  return "?";
}

}  // namespace

SimTime FaultPlan::onset() const {
  SimTime first = 0;
  bool any = false;
  for (const FaultEvent& event : events) {
    if (!any || event.when < first) first = event.when;
    any = true;
  }
  return any ? first : 0;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    AAPC_REQUIRE(event.when >= 0, "fault event " << i << " ("
                                                 << kind_name(event.kind)
                                                 << "): negative time");
    if (is_link_event(event.kind)) {
      AAPC_REQUIRE(event.link >= 0, "fault event " << i << " ("
                                                   << kind_name(event.kind)
                                                   << "): bad link "
                                                   << event.link);
      if (event.kind == FaultKind::kLinkDegrade) {
        AAPC_REQUIRE(event.factor > 0 && event.factor <= 1.0,
                     "fault event " << i
                                    << ": degrade fraction must be in (0, 1]"
                                    << ", got " << event.factor);
      }
    } else {
      AAPC_REQUIRE(event.rank >= 0, "fault event " << i << " ("
                                                   << kind_name(event.kind)
                                                   << "): bad rank "
                                                   << event.rank);
      if (event.kind == FaultKind::kNodeSlowdown) {
        AAPC_REQUIRE(event.factor >= 1.0,
                     "fault event " << i
                                    << ": slowdown multiplier must be >= 1"
                                    << ", got " << event.factor);
      }
    }
  }
}

FaultPlan FaultPlan::sorted() const {
  validate();
  FaultPlan copy = *this;
  std::stable_sort(copy.events.begin(), copy.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.when < b.when;
                   });
  return copy;
}

void CompiledFaults::apply(mpisim::ExecutorParams& params) const {
  params.capacity_events.insert(params.capacity_events.end(),
                                capacity_events.begin(),
                                capacity_events.end());
  params.rank_faults.insert(params.rank_faults.end(), rank_faults.begin(),
                            rank_faults.end());
  params.fault_markers.insert(params.fault_markers.end(), markers.begin(),
                              markers.end());
}

CompiledFaults compile(const FaultPlan& plan,
                       const simnet::NetworkParams& params,
                       std::int32_t link_count,
                       const std::vector<std::int32_t>& link_map) {
  const FaultPlan ordered = plan.sorted();
  const std::vector<double> nominal = params.link_capacities(link_count);
  CompiledFaults out;
  for (const FaultEvent& event : ordered.events) {
    if (is_link_event(event.kind)) {
      std::int32_t link = event.link;
      if (!link_map.empty()) {
        AAPC_REQUIRE(
            event.link < static_cast<std::int32_t>(link_map.size()),
            "fault plan link " << event.link << " outside link map of size "
                               << link_map.size());
        link = link_map[static_cast<std::size_t>(event.link)];
        if (link < 0) continue;  // blocked link: carries no traffic here
      }
      AAPC_REQUIRE(link < link_count,
                   "fault plan link " << link << " outside topology with "
                                      << link_count << " links");
      const double base = nominal[static_cast<std::size_t>(link)];
      const double capacity =
          event.kind == FaultKind::kLinkDown
              ? 0.0
              : (event.kind == FaultKind::kLinkUp ? base
                                                  : base * event.factor);
      out.capacity_events.push_back(
          simnet::LinkCapacityEvent{event.when, link, capacity});
      std::ostringstream label;
      switch (event.kind) {
        case FaultKind::kLinkDown:
          label << "link " << event.link << " down";
          break;
        case FaultKind::kLinkUp:
          label << "link " << event.link << " restored";
          break;
        default:
          label << "link " << event.link << " degraded to "
                << static_cast<std::int64_t>(event.factor * 100 + 0.5)
                << "%";
      }
      out.markers.push_back(mpisim::FaultMarker{event.when, label.str()});
    } else if (event.kind == FaultKind::kNodeSlowdown) {
      out.rank_faults.push_back(mpisim::RankFault{
          event.rank, event.factor, event.when, simnet::kNever});
      std::ostringstream label;
      label << "rank " << event.rank << " slowdown x" << event.factor;
      out.markers.push_back(mpisim::FaultMarker{event.when, label.str()});
    } else {  // kNodeCrash
      out.rank_faults.push_back(
          mpisim::RankFault{event.rank, 1.0, 0, event.when});
      std::ostringstream label;
      label << "rank " << event.rank << " crash";
      out.markers.push_back(mpisim::FaultMarker{event.when, label.str()});
    }
  }
  return out;
}

std::vector<double> link_factors_at(const FaultPlan& plan, SimTime t,
                                    std::int32_t link_count) {
  const FaultPlan ordered = plan.sorted();
  std::vector<double> factors(static_cast<std::size_t>(link_count), 1.0);
  for (const FaultEvent& event : ordered.events) {
    if (!is_link_event(event.kind) || event.when > t) continue;
    AAPC_REQUIRE(event.link < link_count,
                 "fault plan link " << event.link << " outside plan space of "
                                    << link_count << " links");
    factors[static_cast<std::size_t>(event.link)] =
        event.kind == FaultKind::kLinkDown
            ? 0.0
            : (event.kind == FaultKind::kLinkUp ? 1.0 : event.factor);
  }
  return factors;
}

std::vector<Rank> ranks_crashed_at(const FaultPlan& plan, SimTime t) {
  std::vector<Rank> crashed;
  for (const FaultEvent& event : plan.events) {
    if (event.kind == FaultKind::kNodeCrash && event.when <= t) {
      crashed.push_back(event.rank);
    }
  }
  std::sort(crashed.begin(), crashed.end());
  crashed.erase(std::unique(crashed.begin(), crashed.end()), crashed.end());
  return crashed;
}

FaultSummary summarize(const FaultPlan& plan, std::int32_t link_count) {
  FaultSummary summary;
  const std::vector<double> factors =
      link_factors_at(plan, simnet::kNever, link_count);
  for (std::int32_t l = 0; l < link_count; ++l) {
    const double factor = factors[static_cast<std::size_t>(l)];
    if (factor == 0.0) {
      summary.down_links.push_back(l);
    } else if (factor < 1.0) {
      summary.degraded_links.push_back(l);
    }
  }
  for (const FaultEvent& event : plan.events) {
    if (event.kind == FaultKind::kNodeSlowdown && event.factor > 1.0) {
      summary.straggler_ranks.push_back(event.rank);
    }
  }
  std::sort(summary.straggler_ranks.begin(), summary.straggler_ranks.end());
  summary.straggler_ranks.erase(
      std::unique(summary.straggler_ranks.begin(),
                  summary.straggler_ranks.end()),
      summary.straggler_ranks.end());
  summary.crashed_ranks = ranks_crashed_at(plan, simnet::kNever);
  return summary;
}

namespace {

/// Minimal recursive-descent reader for exactly the fault-plan grammar
/// (objects with known keys, arrays, numbers, short strings). Unknown
/// keys are rejected so format drift fails loudly — same policy as
/// core::schedule_from_json.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_space();
    AAPC_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                 "fault plan JSON: expected '" << c << "' at offset "
                                               << pos_);
    ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  std::string key() {
    std::string out = string_value();
    expect(':');
    return out;
  }

  double number() {
    skip_space();
    // Strict JSON-grammar scan + std::from_chars: locale-independent
    // (strtod honours LC_NUMERIC and accepts "inf"/"nan"/hex, none of
    // which are JSON) and overflow is reported instead of saturating
    // silently to HUGE_VAL.
    const ParsedNumber parsed = parse_json_number(text_.substr(pos_));
    AAPC_REQUIRE(parsed.length > 0,
                 "fault plan JSON: expected number at offset " << pos_);
    AAPC_REQUIRE(!parsed.out_of_range,
                 "fault plan JSON: number at offset "
                     << pos_ << " is out of range for a double: "
                     << text_.substr(pos_, parsed.length));
    pos_ += parsed.length;
    return parsed.value;
  }

  /// A number that must be an integer representable in int32 (the
  /// "link" / "rank" fields) — rejects 1.5, 1e12, -2^40 and friends
  /// instead of letting a narrowing cast mangle them.
  std::int32_t int32_value(const char* field) {
    skip_space();
    const std::size_t at = pos_;
    const double value = number();
    AAPC_REQUIRE(std::nearbyint(value) == value &&
                     value >= std::numeric_limits<std::int32_t>::min() &&
                     value <= std::numeric_limits<std::int32_t>::max(),
                 "fault plan JSON: '" << field << "' at offset " << at
                                      << " must be a 32-bit integer, got "
                                      << value);
    return static_cast<std::int32_t>(value);
  }

  void finish() {
    skip_space();
    AAPC_REQUIRE(pos_ == text_.size(),
                 "fault plan JSON: trailing content at offset " << pos_);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string fault_plan_to_json(const FaultPlan& plan) {
  plan.validate();
  std::ostringstream os;
  os << "{\"events\":[";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& event = plan.events[i];
    if (i > 0) os << ',';
    os << "{\"kind\":\"" << kind_name(event.kind) << "\",\"time_ms\":"
       << format_double_roundtrip(to_milliseconds(event.when));
    if (is_link_event(event.kind)) {
      os << ",\"link\":" << event.link;
      if (event.kind == FaultKind::kLinkDegrade) {
        os << ",\"factor\":" << format_double_roundtrip(event.factor);
      }
    } else {
      os << ",\"rank\":" << event.rank;
      if (event.kind == FaultKind::kNodeSlowdown) {
        os << ",\"factor\":" << format_double_roundtrip(event.factor);
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

FaultPlan fault_plan_from_json(std::string_view json) {
  Reader reader(json);
  FaultPlan plan;
  reader.expect('{');
  bool saw_events = false;
  do {
    const std::string field = reader.key();
    AAPC_REQUIRE(field == "events",
                 "fault plan JSON: unknown field '" << field << "'");
    saw_events = true;
    reader.expect('[');
    if (!reader.consume(']')) {
      do {
        reader.expect('{');
        std::string kind;
        bool saw_time = false;
        FaultEvent event;
        do {
          const std::string name = reader.key();
          if (name == "kind") {
            kind = reader.string_value();
          } else if (name == "time_ms") {
            event.when = milliseconds(reader.number());
            saw_time = true;
          } else if (name == "link") {
            event.link = reader.int32_value("link");
          } else if (name == "rank") {
            event.rank = static_cast<Rank>(reader.int32_value("rank"));
          } else if (name == "factor") {
            event.factor = reader.number();
          } else {
            throw InvalidArgument("fault plan JSON: unknown field '" + name +
                                  "'");
          }
        } while (reader.consume(','));
        reader.expect('}');
        AAPC_REQUIRE(saw_time, "fault plan JSON: event missing 'time_ms'");
        if (kind == "link_degrade") {
          event.kind = FaultKind::kLinkDegrade;
        } else if (kind == "link_down") {
          event.kind = FaultKind::kLinkDown;
          event.factor = 0.0;
        } else if (kind == "link_up") {
          event.kind = FaultKind::kLinkUp;
          event.factor = 1.0;
        } else if (kind == "node_slowdown") {
          event.kind = FaultKind::kNodeSlowdown;
        } else if (kind == "node_crash") {
          event.kind = FaultKind::kNodeCrash;
          event.factor = 1.0;
        } else {
          throw InvalidArgument("fault plan JSON: unknown kind '" + kind +
                                "'");
        }
        plan.events.push_back(event);
      } while (reader.consume(','));
      reader.expect(']');
    }
  } while (reader.consume(','));
  reader.expect('}');
  reader.finish();
  AAPC_REQUIRE(saw_events, "fault plan JSON: missing 'events'");
  plan.validate();
  return plan;
}

}  // namespace aapc::faults
