#include "aapc/baselines/baselines.hpp"

#include "aapc/common/error.hpp"

namespace aapc::baselines {

using mpisim::Op;
using mpisim::Program;
using mpisim::ProgramSet;
using topology::Rank;

namespace {

constexpr mpisim::Tag kDataTag = 0;

/// Common shape of LAM's and MPICH's nonblocking algorithms: post all
/// receives, post all sends in `send_order`, wait for everything.
Program post_all_program(Rank me, std::int32_t ranks, Bytes msize,
                         const std::vector<Rank>& send_order) {
  Program program;
  program.ops.push_back(Op::copy(msize));
  // Receives are posted first (both LAM and MPICH prepost receives so
  // eager/rendezvous traffic finds a posted buffer).
  for (std::int32_t step = 0; step < ranks; ++step) {
    const Rank peer = send_order[static_cast<std::size_t>(step)];
    if (peer == me) continue;
    program.ops.push_back(Op::irecv(peer, msize, kDataTag));
  }
  for (std::int32_t step = 0; step < ranks; ++step) {
    const Rank peer = send_order[static_cast<std::size_t>(step)];
    if (peer == me) continue;
    program.ops.push_back(Op::isend(peer, msize, kDataTag));
  }
  program.ops.push_back(Op::wait_all());
  return program;
}

}  // namespace

ProgramSet lam_alltoallv(std::int32_t ranks,
                         const std::vector<Bytes>& size_matrix) {
  AAPC_REQUIRE(ranks >= 1, "need at least one rank");
  AAPC_REQUIRE(size_matrix.size() ==
                   static_cast<std::size_t>(ranks) * ranks,
               "size matrix must be " << ranks << " x " << ranks);
  auto bytes_for = [&](Rank src, Rank dst) -> Bytes {
    const Bytes bytes =
        size_matrix[static_cast<std::size_t>(src) * ranks + dst];
    return bytes > 0 ? bytes : Bytes{1};
  };
  ProgramSet set;
  set.name = "LAM-v";
  for (Rank me = 0; me < ranks; ++me) {
    Program program;
    program.ops.push_back(Op::copy(bytes_for(me, me)));
    for (Rank peer = 0; peer < ranks; ++peer) {
      if (peer == me) continue;
      program.ops.push_back(Op::irecv(peer, bytes_for(peer, me), kDataTag));
    }
    for (Rank peer = 0; peer < ranks; ++peer) {
      if (peer == me) continue;
      program.ops.push_back(Op::isend(peer, bytes_for(me, peer), kDataTag));
    }
    program.ops.push_back(Op::wait_all());
    set.programs.push_back(std::move(program));
  }
  return set;
}

bool is_power_of_two(std::int32_t value) {
  return value > 0 && (value & (value - 1)) == 0;
}

ProgramSet lam_alltoall(std::int32_t ranks, Bytes msize) {
  AAPC_REQUIRE(ranks >= 1, "need at least one rank");
  ProgramSet set;
  set.name = "LAM";
  for (Rank me = 0; me < ranks; ++me) {
    // Order i->0, i->1, ..., i->N-1.
    std::vector<Rank> order(static_cast<std::size_t>(ranks));
    for (std::int32_t j = 0; j < ranks; ++j) order[j] = j;
    set.programs.push_back(post_all_program(me, ranks, msize, order));
  }
  return set;
}

ProgramSet mpich_ordered_alltoall(std::int32_t ranks, Bytes msize) {
  AAPC_REQUIRE(ranks >= 1, "need at least one rank");
  ProgramSet set;
  set.name = "MPICH-ordered";
  for (Rank me = 0; me < ranks; ++me) {
    // Order i->i+1, i->i+2, ..., i->(i+N-1) mod N.
    std::vector<Rank> order;
    order.reserve(static_cast<std::size_t>(ranks));
    for (std::int32_t j = 1; j <= ranks; ++j) {
      order.push_back((me + j) % ranks);
    }
    set.programs.push_back(post_all_program(me, ranks, msize, order));
  }
  return set;
}

ProgramSet mpich_pairwise_alltoall(std::int32_t ranks, Bytes msize) {
  AAPC_REQUIRE(is_power_of_two(ranks),
               "pairwise exchange requires a power-of-two rank count, got "
                   << ranks);
  ProgramSet set;
  set.name = "MPICH-pairwise";
  for (Rank me = 0; me < ranks; ++me) {
    Program program;
    program.ops.push_back(Op::copy(msize));
    mpisim::RequestId next = 0;
    for (std::int32_t j = 1; j < ranks; ++j) {
      const Rank peer = me ^ j;
      // Blocking sendrecv: post both, wait both, then the next step.
      program.ops.push_back(Op::irecv(peer, msize, kDataTag));
      const mpisim::RequestId recv = next++;
      program.ops.push_back(Op::isend(peer, msize, kDataTag));
      const mpisim::RequestId send = next++;
      program.ops.push_back(Op::wait(recv));
      program.ops.push_back(Op::wait(send));
    }
    set.programs.push_back(std::move(program));
  }
  return set;
}

ProgramSet mpich_ring_alltoall(std::int32_t ranks, Bytes msize) {
  AAPC_REQUIRE(ranks >= 1, "need at least one rank");
  ProgramSet set;
  set.name = "MPICH-ring";
  for (Rank me = 0; me < ranks; ++me) {
    Program program;
    program.ops.push_back(Op::copy(msize));
    mpisim::RequestId next = 0;
    for (std::int32_t j = 1; j < ranks; ++j) {
      const Rank to = (me + j) % ranks;
      const Rank from = (me - j % ranks + ranks) % ranks;
      program.ops.push_back(Op::irecv(from, msize, kDataTag));
      const mpisim::RequestId recv = next++;
      program.ops.push_back(Op::isend(to, msize, kDataTag));
      const mpisim::RequestId send = next++;
      program.ops.push_back(Op::wait(recv));
      program.ops.push_back(Op::wait(send));
    }
    set.programs.push_back(std::move(program));
  }
  return set;
}

ProgramSet mpich_alltoall(std::int32_t ranks, Bytes msize) {
  // §6: ordered nonblocking up to 32 KB; beyond that pairwise for
  // power-of-two node counts, ring otherwise. (Real MPICH uses Bruck
  // below 256 B; the paper's sweep starts at 8 KB so the ordered
  // algorithm covers the small end here.)
  if (msize <= 32768) {
    ProgramSet set = mpich_ordered_alltoall(ranks, msize);
    set.name = "MPICH";
    return set;
  }
  ProgramSet set = is_power_of_two(ranks)
                       ? mpich_pairwise_alltoall(ranks, msize)
                       : mpich_ring_alltoall(ranks, msize);
  set.name = "MPICH";
  return set;
}

}  // namespace aapc::baselines
