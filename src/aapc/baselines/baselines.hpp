// Baseline MPI_Alltoall algorithms the paper compares against (§6).
//
//  * LAM/MPI 6.5.9: post every nonblocking receive and send, then wait
//    for all of them; rank i sends in the order i->0, i->1, ...,
//    i->N-1 (no scheduling, heavy contention at large sizes).
//  * MPICH (Thakur/Rabenseifner/Gropp improvements):
//      - 256 < msize <= 32768: LAM-like posting but rank i sends in the
//        order i->i+1, i->i+2, ..., i->i+N-1 (mod N);
//      - msize > 32768, N a power of two: pairwise exchange, step j in
//        [1, N): sendrecv with partner i XOR j;
//      - msize > 32768 otherwise: ring, step j in [1, N): send to i+j,
//        receive from i-j (mod N);
//    and a dispatcher (`mpich_alltoall`) that picks by size/node count.
//
// All builders include the rank's local copy of its own block so the
// modeled work matches MPI_Alltoall semantics.
#pragma once

#include "aapc/common/units.hpp"
#include <vector>

#include "aapc/mpisim/program.hpp"

namespace aapc::baselines {

/// LAM/MPI's simple algorithm.
mpisim::ProgramSet lam_alltoall(std::int32_t ranks, Bytes msize);

/// MPICH's ordered nonblocking algorithm (mid-size messages).
mpisim::ProgramSet mpich_ordered_alltoall(std::int32_t ranks, Bytes msize);

/// MPICH's pairwise-exchange algorithm; requires `ranks` to be a power
/// of two.
mpisim::ProgramSet mpich_pairwise_alltoall(std::int32_t ranks, Bytes msize);

/// MPICH's ring algorithm (large messages, non-power-of-two).
mpisim::ProgramSet mpich_ring_alltoall(std::int32_t ranks, Bytes msize);

/// The size-adaptive dispatcher as described in §6.
mpisim::ProgramSet mpich_alltoall(std::int32_t ranks, Bytes msize);

/// LAM-style MPI_Alltoallv: post everything with per-pair sizes from a
/// row-major |M| x |M| matrix (zero entries send a minimal message so
/// every pair still matches, mirroring lower_schedule_irregular). The
/// irregular-AAPC baseline.
mpisim::ProgramSet lam_alltoallv(std::int32_t ranks,
                                 const std::vector<Bytes>& size_matrix);

bool is_power_of_two(std::int32_t value);

}  // namespace aapc::baselines
