#include "aapc/lowering/lower.hpp"

#include <algorithm>
#include <functional>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/verify.hpp"

namespace aapc::lowering {

using mpisim::Op;
using mpisim::Program;
using mpisim::ProgramSet;
using mpisim::RequestId;
using mpisim::Tag;

namespace {

constexpr Tag kDataTag = 0;

/// Emit helper tracking request ids per rank (requests are numbered in
/// posting order, mirroring the executor's bookkeeping).
struct RankEmitter {
  Program program;
  RequestId next_request = 0;

  RequestId isend(core::Rank peer, Bytes bytes, Tag tag) {
    program.ops.push_back(Op::isend(peer, bytes, tag));
    return next_request++;
  }
  RequestId irecv(core::Rank peer, Bytes bytes, Tag tag) {
    program.ops.push_back(Op::irecv(peer, bytes, tag));
    return next_request++;
  }
  void wait(RequestId request) { program.ops.push_back(Op::wait(request)); }
  void wait_all() { program.ops.push_back(Op::wait_all()); }
  void barrier() { program.ops.push_back(Op::barrier()); }
  void copy(Bytes bytes) { program.ops.push_back(Op::copy(bytes)); }
};

/// Size of the data message src -> dst (diagonal = self-copy size).
using SizeFn = std::function<Bytes(core::Rank, core::Rank)>;

ProgramSet lower_barrier_mode(const topology::Topology& topo,
                              const core::Schedule& schedule,
                              const SizeFn& bytes_for,
                              const LoweringOptions& options,
                              LoweringInfo* info) {
  const std::int32_t ranks = topo.machine_count();
  std::vector<RankEmitter> emit(static_cast<std::size_t>(ranks));
  if (options.include_self_copy) {
    for (core::Rank r = 0; r < ranks; ++r) {
      emit[r].copy(bytes_for(r, r));
    }
  }
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    // Post this phase's operations, wait them, then a global barrier.
    std::vector<std::pair<core::Rank, RequestId>> to_wait;
    for (const core::ScheduledMessage& sm : schedule.phase(p)) {
      const core::Message& m = sm.message;
      const Bytes bytes = bytes_for(m.src, m.dst);
      to_wait.emplace_back(m.dst,
                           emit[m.dst].irecv(m.src, bytes, kDataTag));
      to_wait.emplace_back(m.src,
                           emit[m.src].isend(m.dst, bytes, kDataTag));
      if (info != nullptr) ++info->data_messages;
    }
    for (const auto& [rank, request] : to_wait) {
      emit[rank].wait(request);
    }
    for (auto& e : emit) e.barrier();
  }
  ProgramSet set;
  set.name = "ours-barrier";
  for (auto& e : emit) set.programs.push_back(std::move(e.program));
  return set;
}

ProgramSet lower_with_sizes(const topology::Topology& topo,
                            const core::Schedule& schedule,
                            const SizeFn& bytes_for,
                            const LoweringOptions& options,
                            LoweringInfo* info) {

  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");

  // Runtime schedule invariant (satellite of the §4 conditions): any
  // intra-phase directed-edge sharing means the schedule the caller is
  // about to execute is corrupted — fail now, with the edge named.
  if (options.verify_schedule) {
    core::require_contention_free(topo, schedule);
  }

  if (options.sync == SyncMode::kBarrier) {
    return lower_barrier_mode(topo, schedule, bytes_for, options, info);
  }

  const std::int32_t ranks = topo.machine_count();
  const auto n = static_cast<std::size_t>(schedule.messages.size());

  // Synchronization plan (empty in kNone mode). A caller that already
  // built the plan (the compilation service does, for its cache entry)
  // passes it through `precomputed_plan` instead of paying for a second
  // construction over the same schedule.
  sync::SyncPlan plan;
  const sync::SyncPlan* active_plan = &plan;
  if (options.sync == SyncMode::kPairwise) {
    if (options.precomputed_plan != nullptr) {
      active_plan = options.precomputed_plan;
    } else {
      sync::SyncPlanOptions plan_options;
      plan_options.remove_redundant = options.reduce_redundant_syncs;
      plan = sync::build_sync_plan(topo, schedule, plan_options);
    }
  }
  if (info != nullptr) {
    info->sync_edges_before_reduction = active_plan->edges_before_reduction;
  }

  // Incoming sync edges per message, and outgoing per message (the
  // same adjacency flight::analyze() rebuilds over a dump).
  const sync::PlanAdjacency adjacency = sync::build_adjacency(
      *active_plan, static_cast<std::int64_t>(n));
  const std::vector<std::vector<std::int32_t>>& in_edges = adjacency.in;
  const std::vector<std::vector<std::int32_t>>& out_edges = adjacency.out;

  std::vector<RankEmitter> emit(static_cast<std::size_t>(ranks));
  if (options.include_self_copy) {
    for (core::Rank r = 0; r < ranks; ++r) {
      emit[r].copy(bytes_for(r, r));
    }
  }

  // Prepost every data receive in phase order (messages are
  // phase-sorted).
  for (std::size_t i = 0; i < n; ++i) {
    const core::Message& m = schedule.messages[i].message;
    emit[m.dst].irecv(m.src, bytes_for(m.src, m.dst), kDataTag);
    if (info != nullptr) ++info->data_messages;
  }

  // Data send request id per message (assigned when emitted).
  std::vector<RequestId> send_request(n, -1);
  // Unique token tag per sync edge: index into plan.edges.
  auto sync_tag = [&](std::size_t edge_index) -> Tag {
    return mpisim::kSyncTag + static_cast<Tag>(edge_index);
  };
  // Map (from, to) -> edge index for tag lookup.
  auto edge_index_of = [&](std::int32_t from, std::int32_t to) {
    const auto it =
        std::lower_bound(active_plan->edges.begin(), active_plan->edges.end(),
                         sync::SyncEdge{from, to});
    AAPC_CHECK(it != active_plan->edges.end() && it->from == from &&
               it->to == to);
    return static_cast<std::size_t>(it - active_plan->edges.begin());
  };

  for (std::size_t i = 0; i < n; ++i) {
    const core::Message& m = schedule.messages[i].message;
    RankEmitter& sender = emit[m.src];
    // Incoming dependencies: my predecessors must complete first.
    for (const std::int32_t from : in_edges[i]) {
      const core::Message& prev =
          schedule.messages[static_cast<std::size_t>(from)].message;
      if (prev.src == m.src) {
        // Same sender: program order + a local wait suffice.
        AAPC_CHECK(send_request[static_cast<std::size_t>(from)] >= 0);
        sender.wait(send_request[static_cast<std::size_t>(from)]);
        if (info != nullptr) ++info->local_wait_dependencies;
      } else {
        // Pair-wise synchronization: wait for the token from prev's
        // sender.
        const std::size_t edge = edge_index_of(from, static_cast<std::int32_t>(i));
        const RequestId token = sender.irecv(
            prev.src, options.sync_message_bytes, sync_tag(edge));
        sender.wait(token);
      }
    }
    send_request[i] = sender.isend(m.dst, bytes_for(m.src, m.dst), kDataTag);
    // Outgoing cross-node dependencies: complete my message, then send
    // one token per dependent sender.
    bool waited = false;
    for (const std::int32_t to : out_edges[i]) {
      const core::Message& next =
          schedule.messages[static_cast<std::size_t>(to)].message;
      if (next.src == m.src) continue;  // lowered as their local wait
      if (!waited) {
        sender.wait(send_request[i]);
        waited = true;
      }
      const std::size_t edge = edge_index_of(static_cast<std::int32_t>(i), to);
      sender.isend(next.src, options.sync_message_bytes, sync_tag(edge));
      if (info != nullptr) ++info->sync_messages;
    }
  }

  for (auto& e : emit) e.wait_all();

  ProgramSet set;
  set.name = options.sync == SyncMode::kPairwise ? "ours" : "ours-nosync";
  for (auto& e : emit) set.programs.push_back(std::move(e.program));
  return set;
}

}  // namespace

ProgramSet lower_schedule(const topology::Topology& topo,
                          const core::Schedule& schedule, Bytes msize,
                          const LoweringOptions& options,
                          LoweringInfo* info) {
  AAPC_REQUIRE(msize >= 1, "message size must be positive");
  return lower_with_sizes(
      topo, schedule,
      [msize](core::Rank, core::Rank) { return msize; }, options, info);
}

ProgramSet lower_schedule_irregular(const topology::Topology& topo,
                                    const core::Schedule& schedule,
                                    const std::vector<Bytes>& size_matrix,
                                    const LoweringOptions& options,
                                    LoweringInfo* info) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const auto machines = static_cast<std::size_t>(topo.machine_count());
  AAPC_REQUIRE(size_matrix.size() == machines * machines,
               "size matrix must be |M| x |M| = " << machines * machines
                                                  << " entries, got "
                                                  << size_matrix.size());
  ProgramSet set = lower_with_sizes(
      topo, schedule,
      [&](core::Rank src, core::Rank dst) {
        // The executor models flows, not buffers; zero-byte pairs keep
        // a minimal 1-byte message so matching and synchronization
        // semantics are identical to a real Alltoallv with empty slots.
        const Bytes bytes =
            size_matrix[static_cast<std::size_t>(src) * machines + dst];
        return bytes > 0 ? bytes : Bytes{1};
      },
      options, info);
  set.name += "-irregular";
  return set;
}

}  // namespace aapc::lowering
