// Lowering: schedule (+ synchronization plan) -> per-rank mpisim
// programs. This is the executable twin of the §5 routine generator's C
// output: the same operation sequence the generated MPI_Alltoall would
// perform, expressed as mpisim ops.
//
// Per-rank structure (kPairwise mode):
//   copy own block
//   prepost one irecv per incoming data message (phase order)
//   for each phase p in ascending order:
//     if this rank sends message m at p:
//       for each sync edge (m' -> m):
//         same sender  -> wait(m' send request)       (implicit ordering)
//         other sender -> irecv+wait sync token       (pair-wise sync)
//       isend(data)
//       if m has cross-node dependents: wait(m), isend one token each
//   waitall
#pragma once

#include "aapc/common/units.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/mpisim/program.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::lowering {

enum class SyncMode {
  /// Pair-wise synchronization messages after transitive reduction (§5,
  /// the paper's implementation).
  kPairwise,
  /// A barrier between consecutive phases (§5's strawman; slow without
  /// dedicated barrier hardware).
  kBarrier,
  /// No inter-phase synchronization: phase order is only the posting
  /// order (ablation: shows the end-node/link contention the paper
  /// observes at 32-64 KB without synchronizations).
  kNone,
};

struct LoweringOptions {
  SyncMode sync = SyncMode::kPairwise;
  /// Payload of one synchronization token.
  Bytes sync_message_bytes = 4;
  /// Remove transitively redundant synchronizations (§5). Ablation knob.
  bool reduce_redundant_syncs = true;
  /// Model the rank's copy of its own AAPC block.
  bool include_self_copy = true;
  /// Run core::require_contention_free on the schedule before lowering
  /// (cheap — O(total path length)), so a corrupted or mis-repaired
  /// schedule fails loudly here instead of executing with silently
  /// contended phases. On by default in every build type.
  bool verify_schedule = true;
  /// A sync plan already built for exactly this schedule (kPairwise
  /// only). Non-null skips the internal build_sync_plan call — the
  /// compilation service builds the plan once for its cache entry and
  /// reuses it here. Must outlive the lowering call; must come from the
  /// same schedule, or the emitted token pattern is wrong.
  const sync::SyncPlan* precomputed_plan = nullptr;
};

/// Statistics accompanying a lowered program set.
struct LoweringInfo {
  std::int64_t data_messages = 0;
  std::int64_t sync_messages = 0;        // network tokens (cross-node)
  std::int64_t local_wait_dependencies = 0;  // same-sender orderings
  std::int64_t sync_edges_before_reduction = 0;
};

/// Lowers `schedule` for message size `msize`. The schedule must cover
/// machine ranks of `topo` (as produced by core::build_aapc_schedule).
mpisim::ProgramSet lower_schedule(const topology::Topology& topo,
                                  const core::Schedule& schedule,
                                  Bytes msize,
                                  const LoweringOptions& options = {},
                                  LoweringInfo* info = nullptr);

/// Irregular variant (MPI_Alltoallv-style): per-pair message sizes.
/// `size_matrix` is row-major |M| x |M|; entry [src * |M| + dst] is the
/// payload src sends to dst (self entries ignored; zero-byte pairs are
/// still scheduled as minimal messages so the phase structure and
/// synchronization stay valid). The self copy uses the diagonal entry.
mpisim::ProgramSet lower_schedule_irregular(
    const topology::Topology& topo, const core::Schedule& schedule,
    const std::vector<Bytes>& size_matrix,
    const LoweringOptions& options = {}, LoweringInfo* info = nullptr);

}  // namespace aapc::lowering
