#include "aapc/trace/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/common/table.hpp"

namespace aapc::trace {

std::string to_csv(const std::vector<mpisim::MessageTrace>& trace) {
  std::ostringstream os;
  os << "src,dst,bytes,tag,kind,start_us,end_us,delivered_us\n";
  for (const mpisim::MessageTrace& m : trace) {
    os << m.src << ',' << m.dst << ',' << m.bytes << ',' << m.tag << ','
       << (m.is_sync ? "sync" : "data") << ','
       << format_double(to_microseconds(m.start), 3) << ','
       << format_double(to_microseconds(m.end), 3) << ','
       << format_double(to_microseconds(m.delivered), 3) << '\n';
  }
  return os.str();
}

namespace {

/// Minimal JSON string escaping for event/marker labels (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void append_transfer_events(
    std::ostringstream& os, const std::vector<mpisim::MessageTrace>& trace,
    bool& first) {
  for (const mpisim::MessageTrace& m : trace) {
    if (!first) os << ',';
    first = false;
    if (m.is_sync) {
      // Instant event on the sender's track at token departure.
      os << "{\"name\":\"sync->" << m.dst << "\",\"ph\":\"i\",\"s\":\"t\","
         << "\"pid\":0,\"tid\":" << m.src
         << ",\"ts\":" << format_double(to_microseconds(m.start), 3) << '}';
    } else {
      os << "{\"name\":\"" << m.src << "->" << m.dst
         << "\",\"cat\":\"data\",\"ph\":\"X\",\"pid\":0,\"tid\":" << m.src
         << ",\"ts\":" << format_double(to_microseconds(m.start), 3)
         << ",\"dur\":"
         << format_double(to_microseconds(m.end - m.start), 3)
         << ",\"args\":{\"bytes\":" << m.bytes << ",\"dst\":" << m.dst;
      if (m.retries > 0) {
        os << ",\"retries\":" << m.retries;
      }
      os << "}}";
    }
  }
}

}  // namespace

std::string to_chrome_json(const std::vector<mpisim::MessageTrace>& trace) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  append_transfer_events(os, trace, first);
  os << "]}";
  return os.str();
}

std::string to_chrome_json(const std::vector<mpisim::MessageTrace>& trace,
                           const std::vector<mpisim::FaultMarker>& markers) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  append_transfer_events(os, trace, first);
  // Faults as process-global instant events on a dedicated track.
  for (const mpisim::FaultMarker& marker : markers) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(marker.label)
       << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,"
       << "\"tid\":\"faults\",\"ts\":"
       << format_double(to_microseconds(marker.time), 3) << '}';
  }
  os << "]}";
  return os.str();
}

std::string ascii_gantt(const std::vector<mpisim::MessageTrace>& trace,
                        std::int32_t rank_count,
                        const GanttOptions& options) {
  AAPC_REQUIRE(options.width >= 10, "gantt width too small");
  SimTime horizon = 0;
  for (const mpisim::MessageTrace& m : trace) {
    horizon = std::max(horizon, m.end);
  }
  if (horizon <= 0) return "(empty trace)\n";

  std::ostringstream os;
  os << "time 0 .. " << format_double(to_milliseconds(horizon), 2)
     << " ms, one row per sending rank ('#' transfer, digit = overlap)\n";
  const double scale = static_cast<double>(options.width) / horizon;
  for (mpisim::Rank r = 0; r < rank_count; ++r) {
    std::vector<std::int32_t> cells(static_cast<std::size_t>(options.width),
                                    0);
    for (const mpisim::MessageTrace& m : trace) {
      if (m.src != r) continue;
      if (options.data_only && m.is_sync) continue;
      auto begin = static_cast<std::int32_t>(m.start * scale);
      auto end = static_cast<std::int32_t>(m.end * scale);
      begin = std::clamp(begin, 0, options.width - 1);
      end = std::clamp(end, begin, options.width - 1);
      for (std::int32_t c = begin; c <= end; ++c) {
        cells[static_cast<std::size_t>(c)] += 1;
      }
    }
    os << (r < 10 ? " " : "") << r << " |";
    for (const std::int32_t depth : cells) {
      if (depth == 0) {
        os << '.';
      } else if (depth == 1) {
        os << '#';
      } else {
        os << std::min(depth, 9);
      }
    }
    os << "|\n";
  }
  return os.str();
}

std::string link_utilization_report(
    const topology::Topology& topo, const simnet::NetworkStats& stats,
    double effective_bandwidth_bytes_per_sec, SimTime completion) {
  AAPC_REQUIRE(stats.edge_bytes.size() ==
                   static_cast<std::size_t>(topo.directed_edge_count()),
               "stats do not match the topology");
  TextTable table;
  table.set_header({"edge", "bytes", "utilization"});
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    const double bytes = stats.edge_bytes[static_cast<std::size_t>(e)];
    const double utilization =
        completion > 0
            ? bytes / (effective_bandwidth_bytes_per_sec * completion)
            : 0.0;
    table.add_row({topo.name(topo.edge_source(e)) + "->" +
                       topo.name(topo.edge_target(e)),
                   format_double(bytes, 0),
                   format_double(100.0 * utilization, 1) + "%"});
  }
  return table.render();
}

std::int32_t max_overlapping_contending_transfers(
    const topology::Topology& topo,
    const std::vector<mpisim::MessageTrace>& trace) {
  // Collect data transfers with their tree paths.
  struct Entry {
    SimTime start;
    SimTime end;
    std::vector<topology::EdgeId> path;
  };
  std::vector<Entry> entries;
  for (const mpisim::MessageTrace& m : trace) {
    if (m.is_sync) continue;
    entries.push_back(Entry{
        m.start, m.end,
        topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))});
  }
  // Per directed edge, the maximum number of simultaneously-open
  // transfer intervals crossing it (sweep over interval endpoints;
  // half-open [start, end) so back-to-back serialization counts as 1).
  std::int32_t worst = 0;
  for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
    std::vector<std::pair<SimTime, std::int32_t>> events;
    for (const Entry& entry : entries) {
      if (std::find(entry.path.begin(), entry.path.end(), e) ==
          entry.path.end()) {
        continue;
      }
      events.emplace_back(entry.start, +1);
      events.emplace_back(entry.end, -1);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& lhs, const auto& rhs) {
                if (lhs.first != rhs.first) return lhs.first < rhs.first;
                return lhs.second < rhs.second;  // close before open
              });
    std::int32_t depth = 0;
    for (const auto& [time, delta] : events) {
      depth += delta;
      worst = std::max(worst, depth);
    }
  }
  return worst;
}

}  // namespace aapc::trace
