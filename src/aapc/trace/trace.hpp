// Trace rendering: turns the executor's per-message timeline into
// human- and tool-consumable artifacts.
//
//  * CSV           one row per transfer (spreadsheet analysis)
//  * Chrome JSON   the trace-event format understood by
//                  chrome://tracing and https://ui.perfetto.dev —
//                  one track per rank, data transfers as duration
//                  events, sync tokens as instant markers
//  * ASCII Gantt   a terminal chart, one row per rank
//  * link report   per-directed-edge bytes and utilization over the run
#pragma once

#include <string>
#include <vector>

#include "aapc/mpisim/executor.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::trace {

/// One transfer per CSV row: src,dst,bytes,tag,kind,start,end,delivered.
std::string to_csv(const std::vector<mpisim::MessageTrace>& trace);

/// Chrome trace-event JSON ("traceEvents" array; timestamps in
/// microseconds; pid 0, tid = sender rank). Transfers the watchdog
/// reposted carry a "retries" arg.
std::string to_chrome_json(const std::vector<mpisim::MessageTrace>& trace);

/// As above, plus one global instant event per fault marker (fault
/// injections, watchdog retries — ExecutionResult::fault_markers), so
/// the fault timeline lines up with the transfers it perturbed.
std::string to_chrome_json(const std::vector<mpisim::MessageTrace>& trace,
                           const std::vector<mpisim::FaultMarker>& markers);

struct GanttOptions {
  /// Total character width of the time axis.
  std::int32_t width = 100;
  /// Skip synchronization tokens (usually too small to see).
  bool data_only = true;
};

/// Terminal Gantt chart: one row per sending rank; '#' spans a data
/// transfer, '.' idle. Overlapping transfers on one rank render '2'...
std::string ascii_gantt(const std::vector<mpisim::MessageTrace>& trace,
                        std::int32_t rank_count,
                        const GanttOptions& options = {});

/// Per-directed-edge traffic and utilization relative to the effective
/// bandwidth over [0, completion].
std::string link_utilization_report(const topology::Topology& topo,
                                    const simnet::NetworkStats& stats,
                                    double effective_bandwidth_bytes_per_sec,
                                    SimTime completion);

/// Maximum number of data transfers simultaneously in flight whose
/// tree paths share a directed edge — 1 for a correctly serialized
/// contention-free execution (used by tests to validate the §5
/// synchronization end to end).
std::int32_t max_overlapping_contending_transfers(
    const topology::Topology& topo,
    const std::vector<mpisim::MessageTrace>& trace);

}  // namespace aapc::trace
