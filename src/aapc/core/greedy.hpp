// Greedy contention-free scheduling of arbitrary message patterns.
//
// The paper's algorithm is specific to (and optimal for) the complete
// AAPC pattern. Real applications also run *irregular* personalized
// exchanges (the paper's related work cites Liu/Wang/Prasanna for
// those). This module provides the natural baseline: greedy first-fit
// phase assignment for any set of point-to-point messages on a tree.
//
// Guarantees:
//  * phases are contention-free (first-fit never places two messages
//    sharing a directed edge in one phase);
//  * phase count >= pattern load (max per-edge message count) always,
//    with equality NOT guaranteed — on full AAPC the gap versus the
//    paper's optimal scheduler is what bench/examples quantify.
#pragma once

#include <vector>

#include "aapc/core/schedule.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {

/// An arbitrary pattern: any multiset of messages between machine
/// ranks (duplicates allowed; they land in different phases).
using Pattern = std::vector<Message>;

/// The load of an arbitrary pattern: max over directed edges of the
/// number of messages whose path uses the edge. Lower-bounds any
/// contention-free schedule's phase count.
std::int64_t pattern_load(const topology::Topology& topo,
                          const Pattern& pattern);

struct GreedyOptions {
  /// Order heuristic before first-fit placement.
  enum class Order {
    kInput,           // as given
    kLongestPathFirst,  // messages with longer tree paths first
    kBottleneckFirst,   // messages crossing the most-loaded edge first
  };
  Order order = Order::kLongestPathFirst;
};

/// First-fit greedy scheduling of `pattern`. Self-messages are
/// rejected. The result passes core::verify_schedule with
/// require_optimal_phase_count = false.
Schedule greedy_schedule(const topology::Topology& topo,
                         const Pattern& pattern,
                         const GreedyOptions& options = {});

/// The full AAPC pattern on `topo` (all ordered machine pairs), the
/// input that makes greedy_schedule comparable with
/// build_aapc_schedule.
Pattern aapc_pattern(const topology::Topology& topo);

/// One-to-all personalized (MPI_Scatter shape): root -> every other
/// rank. Its load is |M| - 1 on the root's uplink; any contention-free
/// schedule needs exactly that many phases, which greedy achieves.
Pattern scatter_pattern(const topology::Topology& topo,
                        Rank root);

/// All-to-one personalized (MPI_Gather shape): every other rank ->
/// root.
Pattern gather_pattern(const topology::Topology& topo, Rank root);

/// Neighbor exchange of radius `k`: each rank sends to ranks
/// (r ± 1..k) mod |M| — the halo-exchange shape of stencil codes.
Pattern neighbor_exchange_pattern(const topology::Topology& topo,
                                  std::int32_t k);

}  // namespace aapc::core
