// Schedule statistics: quantifies how "full" a phase schedule is —
// useful for understanding why topologies differ (a single switch keeps
// every machine busy every phase; a chain leaves subtrees idle while
// the trunk serializes) and for regression-testing schedule shape.
#pragma once

#include <cstdint>
#include <string>

#include "aapc/core/schedule.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {

struct ScheduleStats {
  std::int32_t phase_count = 0;
  std::int64_t message_count = 0;

  /// Messages per phase.
  double avg_messages_per_phase = 0;
  std::int32_t min_messages_per_phase = 0;
  std::int32_t max_messages_per_phase = 0;

  /// Fraction of (machine, phase) slots where the machine sends, and
  /// where it receives. 1.0 = perfectly dense (every machine busy every
  /// phase), the single-switch case.
  double send_occupancy = 0;
  double receive_occupancy = 0;

  /// Bottleneck-link utilization: the fraction of phases in which the
  /// bottleneck link carries a message (per direction, averaged). The
  /// optimal schedule keeps this at 1.0 — that is what makes it achieve
  /// the §3 peak.
  double bottleneck_phase_utilization = 0;

  std::string to_string() const;
};

/// Computes the statistics of any schedule over `topo` (works for
/// non-optimal and partial schedules too).
ScheduleStats compute_schedule_stats(const topology::Topology& topo,
                                     const Schedule& schedule);

}  // namespace aapc::core
