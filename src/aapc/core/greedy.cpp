#include "aapc/core/greedy.hpp"

#include <algorithm>
#include <numeric>

#include "aapc/common/error.hpp"

namespace aapc::core {

std::int64_t pattern_load(const topology::Topology& topo,
                          const Pattern& pattern) {
  std::vector<std::int64_t> edge_load(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (const Message& m : pattern) {
    for (const topology::EdgeId e :
         topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))) {
      edge_load[static_cast<std::size_t>(e)] += 1;
    }
  }
  std::int64_t load = 0;
  for (const std::int64_t l : edge_load) load = std::max(load, l);
  return load;
}

Pattern aapc_pattern(const topology::Topology& topo) {
  Pattern pattern;
  const std::int32_t machines = topo.machine_count();
  pattern.reserve(static_cast<std::size_t>(machines) * (machines - 1));
  for (Rank src = 0; src < machines; ++src) {
    for (Rank dst = 0; dst < machines; ++dst) {
      if (src != dst) pattern.push_back(Message{src, dst});
    }
  }
  return pattern;
}

Pattern scatter_pattern(const topology::Topology& topo, Rank root) {
  AAPC_REQUIRE(root >= 0 && root < topo.machine_count(),
               "bad scatter root " << root);
  Pattern pattern;
  for (Rank dst = 0; dst < topo.machine_count(); ++dst) {
    if (dst != root) pattern.push_back(Message{root, dst});
  }
  return pattern;
}

Pattern gather_pattern(const topology::Topology& topo, Rank root) {
  AAPC_REQUIRE(root >= 0 && root < topo.machine_count(),
               "bad gather root " << root);
  Pattern pattern;
  for (Rank src = 0; src < topo.machine_count(); ++src) {
    if (src != root) pattern.push_back(Message{src, root});
  }
  return pattern;
}

Pattern neighbor_exchange_pattern(const topology::Topology& topo,
                                  std::int32_t k) {
  const std::int32_t machines = topo.machine_count();
  AAPC_REQUIRE(k >= 1 && k < machines,
               "neighbor radius " << k << " out of range for " << machines
                                  << " machines");
  Pattern pattern;
  std::vector<char> seen(static_cast<std::size_t>(machines), 0);
  for (Rank src = 0; src < machines; ++src) {
    // Radii can wrap onto each other on small rings (e.g. +d and
    // -(|M|-d) are the same destination); emit each neighbor once.
    std::fill(seen.begin(), seen.end(), 0);
    for (std::int32_t d = 1; d <= k; ++d) {
      for (const Rank dst :
           {static_cast<Rank>((src + d) % machines),
            static_cast<Rank>((src - d + machines) % machines)}) {
        if (dst != src && !seen[static_cast<std::size_t>(dst)]) {
          seen[static_cast<std::size_t>(dst)] = 1;
          pattern.push_back(Message{src, dst});
        }
      }
    }
  }
  return pattern;
}

Schedule greedy_schedule(const topology::Topology& topo,
                         const Pattern& pattern,
                         const GreedyOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();

  // Precompute paths and validate.
  std::vector<std::vector<topology::EdgeId>> paths;
  paths.reserve(pattern.size());
  for (const Message& m : pattern) {
    AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                     m.dst < machines,
                 "message rank out of range");
    AAPC_REQUIRE(m.src != m.dst, "self message " << m.src << "->" << m.dst);
    paths.push_back(
        topo.path(topo.machine_node(m.src), topo.machine_node(m.dst)));
  }

  // Placement order.
  std::vector<std::size_t> order(pattern.size());
  std::iota(order.begin(), order.end(), 0);
  switch (options.order) {
    case GreedyOptions::Order::kInput:
      break;
    case GreedyOptions::Order::kLongestPathFirst:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return paths[a].size() > paths[b].size();
                       });
      break;
    case GreedyOptions::Order::kBottleneckFirst: {
      // Messages whose path includes the globally most-loaded edge go
      // first, then by descending path length.
      std::vector<std::int64_t> edge_load(
          static_cast<std::size_t>(topo.directed_edge_count()), 0);
      for (const auto& path : paths) {
        for (const topology::EdgeId e : path) {
          edge_load[static_cast<std::size_t>(e)] += 1;
        }
      }
      auto hottest = [&](std::size_t index) {
        std::int64_t hot = 0;
        for (const topology::EdgeId e : paths[index]) {
          hot = std::max(hot, edge_load[static_cast<std::size_t>(e)]);
        }
        return hot;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         const std::int64_t ha = hottest(a);
                         const std::int64_t hb = hottest(b);
                         if (ha != hb) return ha > hb;
                         return paths[a].size() > paths[b].size();
                       });
      break;
    }
  }

  // First-fit: per phase, a bitmap of used directed edges.
  std::vector<std::vector<char>> phase_edges;  // [phase][edge]
  std::vector<std::int32_t> assigned_phase(pattern.size(), -1);
  for (const std::size_t index : order) {
    const auto& path = paths[index];
    std::size_t phase = 0;
    for (;; ++phase) {
      if (phase == phase_edges.size()) {
        phase_edges.emplace_back(
            static_cast<std::size_t>(topo.directed_edge_count()), 0);
        break;
      }
      bool free = true;
      for (const topology::EdgeId e : path) {
        if (phase_edges[phase][static_cast<std::size_t>(e)]) {
          free = false;
          break;
        }
      }
      if (free) break;
    }
    for (const topology::EdgeId e : path) {
      phase_edges[phase][static_cast<std::size_t>(e)] = 1;
    }
    assigned_phase[index] = static_cast<std::int32_t>(phase);
  }

  // Stage in input order so each phase keeps input order, as before.
  ScheduleBuilder builder;
  builder.reserve(static_cast<std::int64_t>(pattern.size()));
  for (std::size_t index = 0; index < pattern.size(); ++index) {
    builder.add(assigned_phase[index], pattern[index].src, pattern[index].dst,
                MessageScope::kGlobal);
  }
  return std::move(builder)
      .build(static_cast<std::int64_t>(phase_edges.size()));
}

}  // namespace aapc::core
