// Global message scheduling (§4.2): allocate consecutive phase spans to
// inter-subtree message groups ti → tj via the extended ring scheduling,
// so that no two groups use a root link in the same phase (Lemma 2).
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/core/decompose.hpp"

namespace aapc::core {

/// Phase spans per ordered subtree pair. Sizes are the |Mi| of the
/// decomposition, already sorted descending.
class GlobalSchedule {
 public:
  /// `sizes` must be non-increasing and contain at least 2 entries.
  explicit GlobalSchedule(std::vector<std::int32_t> sizes);

  std::int32_t subtree_count() const {
    return static_cast<std::int32_t>(sizes_.size());
  }
  std::int32_t size(std::int32_t i) const { return sizes_[i]; }

  /// |M0| * (|M| - |M0|).
  std::int64_t total_phases() const { return total_phases_; }

  /// First phase of group ti → tj (i != j); the group occupies
  /// |Mi| * |Mj| consecutive phases.
  std::int64_t group_start(std::int32_t i, std::int32_t j) const;

  /// |Mi| * |Mj|.
  std::int64_t group_length(std::int32_t i, std::int32_t j) const;

  /// The group (i, j) covering phase p with i == from-subtree, or
  /// (-1, -1) when subtree `from` is not sending in phase p.
  /// O(k) scan — callers iterate groups instead on hot paths.
  std::pair<std::int32_t, std::int32_t> sending_group_at(std::int32_t from,
                                                         std::int64_t p) const;

  /// Ring-scheduling phase (Table 1) for singleton subtrees: the phase of
  /// ti → tj with all |Mi| = 1 is j-i-1 (j > i) or (k-1)-(i-j) (i > j).
  static std::int64_t ring_phase(std::int32_t i, std::int32_t j,
                                 std::int32_t k);

 private:
  std::vector<std::int32_t> sizes_;
  std::vector<std::int64_t> prefix_;  // prefix_[i] = sum of sizes_[0..i)
  std::int64_t total_phases_ = 0;
};

}  // namespace aapc::core
