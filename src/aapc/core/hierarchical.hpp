// Hierarchical message assignment (§4 at scale).
//
// The flat assign_messages walks the six Figure-4 steps in one pass over
// a shared builder. This module restates the algorithm as a set of
// *emission units* — per-subtree and per-subtree-pair message groups
// whose phase placement is closed-form — scheduled independently and
// merged across the root by a stable counting sort into the phase arena.
//
// Unit decomposition (canonical order = the flat staging order):
//   step 1:  one unit per group t0 → tj          (root subtree sends)
//   step 2:  one unit per group ti → t0          (sends into t0)
//   step 3:  one unit: locals inside t0          (embedded, §4.3)
//   step 4:  one unit per group ti → tj, i > j   (broadcast pattern)
//   step 5:  one unit per subtree ti's locals    (embedded in ti → t(i-1))
//   step 6:  one unit per group ti → tj, i < j   (pattern choice free)
//
// The only cross-unit data — the per-phase t0 sender/receiver mapping
// (Table 3) — is closed-form and precomputed once, read-only. Every unit
// therefore knows its exact slice of the staged arena up front, so units
// can be blocked into tasks and run on any thread pool: the bytes
// written are identical regardless of execution order or thread count,
// which is what makes the parallel path bit-identical to the flat one.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "aapc/core/assign.hpp"
#include "aapc/core/decompose.hpp"
#include "aapc/core/schedule.hpp"

namespace aapc::core {

/// One parallelizable piece of schedule construction. Must not throw
/// (pool workers have no exception channel); failures are recorded
/// internally and rethrown after the join.
using Task = std::function<void()>;

/// Executes every task and returns once all of them have finished.
/// Tasks are independent; any order and any number of threads is
/// correct. nullptr means "run inline on the calling thread".
using TaskRunner = std::function<void(const std::vector<Task>&)>;

struct HierarchicalOptions {
  AssignmentOptions assignment;

  /// Target staged messages per task; 0 picks a default that yields a
  /// few tasks per step. Units are never split, so a single huge group
  /// can exceed the target.
  std::int64_t messages_per_task = 0;
};

/// Hierarchical/parallel twin of assign_messages: same Decomposition in,
/// bit-identical Schedule out. `runner` distributes the emission tasks;
/// the merge (counting sort by phase) runs on the calling thread.
Schedule assign_messages_hierarchical(const Decomposition& dec,
                                      const AssignmentOptions& options = {},
                                      const TaskRunner& runner = nullptr);

Schedule assign_messages_hierarchical(const Decomposition& dec,
                                      const HierarchicalOptions& options,
                                      const TaskRunner& runner);

}  // namespace aapc::core
