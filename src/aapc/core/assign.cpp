#include "aapc/core/assign.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"
#include "aapc/core/global_schedule.hpp"
#include "aapc/core/patterns.hpp"

namespace aapc::core {

Schedule assign_messages(const Decomposition& dec,
                         const AssignmentOptions& options) {
  const std::int32_t k = dec.subtree_count();
  AAPC_CHECK(k >= 2);
  std::vector<std::int32_t> sizes(k);
  for (std::int32_t i = 0; i < k; ++i) sizes[i] = dec.subtree_size(i);
  const GlobalSchedule global(sizes);
  const std::int64_t P = global.total_phases();
  const std::int32_t m0 = sizes[0];

  const std::int64_t machine_total = dec.machine_count();
  ScheduleBuilder builder;
  builder.reserve(machine_total * (machine_total - 1));
  auto rank_at = [&](std::int32_t subtree, std::int32_t index) -> Rank {
    return dec.subtrees[subtree][static_cast<std::size_t>(index)];
  };

  // ---- Step 1: t0 -> tj (rotate senders, aligned receivers). ----
  // t0_sender[p]: index within t0 of the machine sending a global message
  // at phase p. Groups t0 -> t1, ..., t0 -> t(k-1) tile [0, P) exactly.
  std::vector<std::int32_t> t0_sender(static_cast<std::size_t>(P), -1);
  for (std::int32_t j = 1; j < k; ++j) {
    const std::int64_t start = global.group_start(0, j);
    const std::int64_t length = global.group_length(0, j);
    for (std::int64_t q = 0; q < length; ++q) {
      const std::int64_t p = start + q;
      const std::int32_t sender = rotate_sender_at(m0, sizes[j], q);
      const auto receiver =
          static_cast<std::int32_t>(positive_mod(p - P, sizes[j]));
      AAPC_CHECK_MSG(t0_sender[static_cast<std::size_t>(p)] == -1,
                     "t0 groups overlap at phase " << p);
      t0_sender[static_cast<std::size_t>(p)] = sender;
      builder.add(p, rank_at(0, sender), rank_at(j, receiver),
                  MessageScope::kGlobal);
    }
  }
  for (std::int64_t p = 0; p < P; ++p) {
    AAPC_CHECK_MSG(t0_sender[static_cast<std::size_t>(p)] != -1,
                   "t0 groups leave phase " << p << " uncovered");
  }

  // ---- Step 2: ti -> t0 (Table-3 receivers, broadcast senders). ----
  // t0_receiver[p]: index within t0 receiving a global message at phase
  // p. The groups t(k-1) -> t0, ..., t1 -> t0 tile [0, P) exactly.
  std::vector<std::int32_t> t0_receiver(static_cast<std::size_t>(P), -1);
  for (std::int32_t i = 1; i < k; ++i) {
    const std::int64_t start = global.group_start(i, 0);
    const std::int64_t length = global.group_length(i, 0);
    AAPC_CHECK_MSG(start % m0 == 0,
                   "group t" << i << "->t0 is not round-aligned");
    for (std::int64_t q = 0; q < length; ++q) {
      const std::int64_t p = start + q;
      const auto sender = static_cast<std::int32_t>(q / m0);  // broadcast
      const std::int64_t round = p / m0;
      const auto shift = static_cast<std::int32_t>(round % m0) + 1;
      const auto receiver = static_cast<std::int32_t>(
          positive_mod(t0_sender[static_cast<std::size_t>(p)] + shift, m0));
      AAPC_CHECK_MSG(t0_receiver[static_cast<std::size_t>(p)] == -1,
                     "ti->t0 groups overlap at phase " << p);
      t0_receiver[static_cast<std::size_t>(p)] = receiver;
      builder.add(p, rank_at(i, sender), rank_at(0, receiver),
                  MessageScope::kGlobal);
    }
  }
  for (std::int64_t p = 0; p < P; ++p) {
    AAPC_CHECK_MSG(t0_receiver[static_cast<std::size_t>(p)] != -1,
                   "ti->t0 groups leave phase " << p << " uncovered");
  }

  // ---- Step 3: locals in t0 within the first |M0|*(|M0|-1) phases. ----
  {
    std::vector<char> done(static_cast<std::size_t>(m0) * m0, 0);
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(m0) * (m0 - 1);
         ++p) {
      const std::int32_t src = t0_receiver[static_cast<std::size_t>(p)];
      const std::int32_t dst = t0_sender[static_cast<std::size_t>(p)];
      AAPC_CHECK_MSG(src != dst, "Table-3 mapping yielded src == dst in the "
                                     << "first |M0|*(|M0|-1) phases at " << p);
      char& seen = done[static_cast<std::size_t>(src) * m0 + dst];
      AAPC_CHECK_MSG(!seen, "duplicate t0 local " << src << "->" << dst);
      seen = 1;
      builder.add(p, rank_at(0, src), rank_at(0, dst), MessageScope::kLocal);
    }
    for (std::int32_t a = 0; a < m0; ++a) {
      for (std::int32_t b = 0; b < m0; ++b) {
        if (a != b) {
          AAPC_CHECK_MSG(done[static_cast<std::size_t>(a) * m0 + b],
                         "t0 local " << a << "->" << b << " unscheduled");
        }
      }
    }
  }

  // ---- Step 4: ti -> tj, i > j >= 1 (broadcast, aligned receivers). ----
  for (std::int32_t i = 2; i < k; ++i) {
    for (std::int32_t j = 1; j < i; ++j) {
      const std::int64_t start = global.group_start(i, j);
      const std::int64_t length = global.group_length(i, j);
      for (std::int64_t q = 0; q < length; ++q) {
        const std::int64_t p = start + q;
        const auto sender = static_cast<std::int32_t>(q / sizes[j]);
        const auto receiver = static_cast<std::int32_t>(q % sizes[j]);
        // Receiver-alignment invariant Step 5 relies on (§4.3).
        AAPC_CHECK_MSG(receiver == positive_mod(p - P, sizes[j]),
                       "step-4 receiver misaligned at phase " << p);
        builder.add(p, rank_at(i, sender), rank_at(j, receiver),
                    MessageScope::kGlobal);
      }
    }
  }

  // ---- Step 5: locals in ti embedded in the ti -> t(i-1) span. ----
  for (std::int32_t i = 1; i < k; ++i) {
    const std::int32_t mi = sizes[i];
    if (mi <= 1) continue;
    const std::int32_t mprev = sizes[i - 1];
    const std::int64_t start = global.group_start(i, i - 1);
    const std::int64_t length = global.group_length(i, i - 1);
    std::vector<char> done(static_cast<std::size_t>(mi) * mi, 0);
    std::int32_t scheduled = 0;
    for (std::int64_t q = 0; q < length; ++q) {
      const std::int64_t p = start + q;
      // Global sender within ti (broadcast over |M(i-1)|-phase spans).
      const auto gsend = static_cast<std::int32_t>(q / mprev);
      // Designated receiver within ti at phase p.
      const auto drecv = static_cast<std::int32_t>(positive_mod(p - P, mi));
      if (gsend == drecv) continue;
      char& seen = done[static_cast<std::size_t>(drecv) * mi + gsend];
      if (seen) continue;
      seen = 1;
      ++scheduled;
      builder.add(p, rank_at(i, drecv), rank_at(i, gsend),
                  MessageScope::kLocal);
    }
    AAPC_CHECK_MSG(scheduled == mi * (mi - 1),
                   "subtree t" << i << " embedded only " << scheduled << "/"
                               << mi * (mi - 1) << " local messages");
  }

  // ---- Step 6: ti -> tj, 0 < i < j (pattern choice is free). ----
  for (std::int32_t i = 1; i < k; ++i) {
    for (std::int32_t j = i + 1; j < k; ++j) {
      const std::int64_t start = global.group_start(i, j);
      const std::vector<PatternEntry> pattern =
          options.step6 == AssignmentOptions::Step6Pattern::kBroadcast
              ? broadcast_pattern(sizes[i], sizes[j])
              : rotate_pattern(sizes[i], sizes[j]);
      for (std::size_t q = 0; q < pattern.size(); ++q) {
        builder.add(start + static_cast<std::int64_t>(q),
                    rank_at(i, pattern[q].sender),
                    rank_at(j, pattern[q].receiver), MessageScope::kGlobal);
      }
    }
  }

  AAPC_CHECK_MSG(builder.staged_count() == machine_total * (machine_total - 1),
                 "schedule holds " << builder.staged_count() << " of "
                                   << machine_total * (machine_total - 1)
                                   << " AAPC messages");
  return std::move(builder).build(P);
}

}  // namespace aapc::core
