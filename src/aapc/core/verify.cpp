#include "aapc/core/verify.hpp"

#include <algorithm>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::core {

std::string VerifyReport::summary() const {
  if (ok) return "schedule OK";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

VerifyReport verify_schedule(const topology::Topology& topo,
                             const Schedule& schedule,
                             const VerifyOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  VerifyReport report;
  auto violate = [&](std::string text) {
    report.ok = false;
    report.violations.push_back(std::move(text));
  };

  // (1) exact coverage of the AAPC pattern.
  std::vector<std::int32_t> seen(
      static_cast<std::size_t>(machines) * machines, 0);
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    for (const Message& m : schedule.phases[p]) {
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines,
                   "message rank out of range in phase " << p);
      if (m.src == m.dst) {
        violate(str_cat("self message ", m.src, "->", m.dst, " in phase ", p));
        continue;
      }
      seen[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
    }
  }
  for (std::int32_t s = 0; s < machines; ++s) {
    for (std::int32_t d = 0; d < machines; ++d) {
      if (s == d) continue;
      const std::int32_t count =
          seen[static_cast<std::size_t>(s) * machines + d];
      if (count != 1) {
        violate(str_cat("message ", s, "->", d, " appears ", count,
                        " times (want 1)"));
      }
    }
  }

  // (2) intra-phase contention: count per-directed-edge usage.
  std::vector<std::int32_t> edge_use(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    std::fill(edge_use.begin(), edge_use.end(), 0);
    for (const Message& m : schedule.phases[p]) {
      if (m.src == m.dst) continue;
      const auto path =
          topo.path(topo.machine_node(m.src), topo.machine_node(m.dst));
      for (const topology::EdgeId e : path) {
        edge_use[static_cast<std::size_t>(e)] += 1;
      }
    }
    for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
      const std::int32_t use = edge_use[static_cast<std::size_t>(e)];
      report.max_edge_multiplicity =
          std::max(report.max_edge_multiplicity, use);
      if (use > 1) {
        violate(str_cat("phase ", p, ": edge ",
                        topo.name(topo.edge_source(e)), "->",
                        topo.name(topo.edge_target(e)), " carries ", use,
                        " messages"));
      }
    }
  }

  // (3) optimal phase count.
  if (options.require_optimal_phase_count && machines >= 2) {
    const std::int64_t load = topo.aapc_load();
    if (schedule.phase_count() != load) {
      violate(str_cat("phase count ", schedule.phase_count(),
                      " != AAPC load ", load));
    }
  }
  return report;
}

VerifyReport verify_schedule_pattern(const topology::Topology& topo,
                                     const Schedule& schedule,
                                     const std::vector<Message>& expected,
                                     const VerifyOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  VerifyReport report;
  auto violate = [&](std::string text) {
    report.ok = false;
    report.violations.push_back(std::move(text));
  };

  // (1) multiset coverage: scheduled counts == expected counts per pair.
  std::vector<std::int64_t> want(
      static_cast<std::size_t>(machines) * machines, 0);
  for (const Message& m : expected) {
    AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                     m.dst < machines && m.src != m.dst,
                 "malformed expected message");
    want[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
  }
  std::vector<std::int64_t> have(want.size(), 0);
  std::vector<std::int32_t> edge_use(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    std::fill(edge_use.begin(), edge_use.end(), 0);
    for (const Message& m : schedule.phases[p]) {
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines && m.src != m.dst,
                   "message rank out of range in phase " << p);
      have[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
      for (const topology::EdgeId e :
           topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))) {
        edge_use[static_cast<std::size_t>(e)] += 1;
      }
    }
    for (topology::EdgeId e = 0; e < topo.directed_edge_count(); ++e) {
      const std::int32_t use = edge_use[static_cast<std::size_t>(e)];
      report.max_edge_multiplicity =
          std::max(report.max_edge_multiplicity, use);
      if (use > 1) {
        violate(str_cat("phase ", p, ": edge ",
                        topo.name(topo.edge_source(e)), "->",
                        topo.name(topo.edge_target(e)), " carries ", use,
                        " messages"));
      }
    }
  }
  for (std::int32_t s = 0; s < machines; ++s) {
    for (std::int32_t d = 0; d < machines; ++d) {
      const std::size_t index = static_cast<std::size_t>(s) * machines + d;
      if (have[index] != want[index]) {
        violate(str_cat("message ", s, "->", d, " scheduled ", have[index],
                        " times (pattern wants ", want[index], ")"));
      }
    }
  }

  if (options.require_optimal_phase_count) {
    // For arbitrary patterns the lower bound is the pattern load.
    std::vector<std::int64_t> edge_load(
        static_cast<std::size_t>(topo.directed_edge_count()), 0);
    for (const Message& m : expected) {
      for (const topology::EdgeId e :
           topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))) {
        edge_load[static_cast<std::size_t>(e)] += 1;
      }
    }
    std::int64_t load = 0;
    for (const std::int64_t l : edge_load) load = std::max(load, l);
    if (schedule.phase_count() < load) {
      violate(str_cat("phase count ", schedule.phase_count(),
                      " below the pattern load ", load,
                      " — the schedule cannot be contention-free"));
    }
  }
  return report;
}

void require_contention_free(const topology::Topology& topo,
                             const Schedule& schedule) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  std::vector<std::int32_t> edge_use(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    std::fill(edge_use.begin(), edge_use.end(), 0);
    for (const Message& m : schedule.phases[p]) {
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines && m.src != m.dst,
                   "malformed message " << m.src << "->" << m.dst
                                        << " in phase " << p);
      for (const topology::EdgeId e :
           topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))) {
        const std::int32_t use = ++edge_use[static_cast<std::size_t>(e)];
        AAPC_REQUIRE(use <= 1,
                     "schedule is not contention-free: phase "
                         << p << " sends " << use << " messages over edge "
                         << topo.name(topo.edge_source(e)) << "->"
                         << topo.name(topo.edge_target(e))
                         << " (corrupted or mis-repaired schedule?)");
      }
    }
  }
}

}  // namespace aapc::core
