#include "aapc/core/verify.hpp"

#include <algorithm>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::core {

namespace {

/// Per-edge usage tracker with epoch stamping: resetting between phases
/// is O(1) instead of an O(E) fill, which made whole-schedule checks
/// O(P * E) — minutes at 4096 ranks, where P is ~4M and E ~10k.
class EdgeUse {
 public:
  explicit EdgeUse(std::int32_t edges)
      : stamp_(static_cast<std::size_t>(edges), -1),
        count_(static_cast<std::size_t>(edges), 0) {}

  /// Registers one use of `e` in phase `p`; returns the in-phase count.
  std::int32_t use(topology::EdgeId e, std::int32_t p) {
    const auto index = static_cast<std::size_t>(e);
    if (stamp_[index] != p) {
      stamp_[index] = p;
      count_[index] = 0;
    }
    return ++count_[index];
  }

 private:
  std::vector<std::int32_t> stamp_;
  std::vector<std::int32_t> count_;
};

}  // namespace

std::string VerifyReport::summary() const {
  if (ok) return "schedule OK";
  std::ostringstream os;
  os << violations.size() << " violation(s):";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

VerifyReport verify_schedule(const topology::Topology& topo,
                             const Schedule& schedule,
                             const VerifyOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  VerifyReport report;
  auto violate = [&](std::string text) {
    report.ok = false;
    report.violations.push_back(std::move(text));
  };

  // (1) exact coverage of the AAPC pattern, and (2) intra-phase
  // contention — one pass over the phase arena with a reused path
  // buffer and stamped edge counters (no per-phase allocation or fill).
  std::vector<std::int32_t> seen(
      static_cast<std::size_t>(machines) * machines, 0);
  EdgeUse edge_use(topo.directed_edge_count());
  std::vector<topology::EdgeId> path;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      const Message& m = sm.message;
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines,
                   "message rank out of range in phase " << p);
      if (m.src == m.dst) {
        violate(str_cat("self message ", m.src, "->", m.dst, " in phase ", p));
        continue;
      }
      seen[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        const std::int32_t use = edge_use.use(e, p);
        report.max_edge_multiplicity =
            std::max(report.max_edge_multiplicity, use);
        if (use == 2) {
          violate(str_cat("phase ", p, ": edge ",
                          topo.name(topo.edge_source(e)), "->",
                          topo.name(topo.edge_target(e)),
                          " carries multiple messages"));
        }
      }
    }
  }
  for (std::int32_t s = 0; s < machines; ++s) {
    for (std::int32_t d = 0; d < machines; ++d) {
      if (s == d) continue;
      const std::int32_t count =
          seen[static_cast<std::size_t>(s) * machines + d];
      if (count != 1) {
        violate(str_cat("message ", s, "->", d, " appears ", count,
                        " times (want 1)"));
      }
    }
  }

  // (3) optimal phase count: the peak bound P = |M0|*(|M|-|M0|) =
  // aapc_load survives any construction, flat or hierarchical.
  if (options.require_optimal_phase_count && machines >= 2) {
    const std::int64_t load = topo.aapc_load();
    if (schedule.phase_count() != load) {
      violate(str_cat("phase count ", schedule.phase_count(),
                      " != AAPC load ", load));
    }
  }
  return report;
}

VerifyReport verify_schedule_pattern(const topology::Topology& topo,
                                     const Schedule& schedule,
                                     const std::vector<Message>& expected,
                                     const VerifyOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  VerifyReport report;
  auto violate = [&](std::string text) {
    report.ok = false;
    report.violations.push_back(std::move(text));
  };

  // (1) multiset coverage: scheduled counts == expected counts per pair.
  std::vector<std::int64_t> want(
      static_cast<std::size_t>(machines) * machines, 0);
  for (const Message& m : expected) {
    AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                     m.dst < machines && m.src != m.dst,
                 "malformed expected message");
    want[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
  }
  std::vector<std::int64_t> have(want.size(), 0);
  EdgeUse edge_use(topo.directed_edge_count());
  std::vector<topology::EdgeId> path;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      const Message& m = sm.message;
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines && m.src != m.dst,
                   "message rank out of range in phase " << p);
      have[static_cast<std::size_t>(m.src) * machines + m.dst] += 1;
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        const std::int32_t use = edge_use.use(e, p);
        report.max_edge_multiplicity =
            std::max(report.max_edge_multiplicity, use);
        if (use == 2) {
          violate(str_cat("phase ", p, ": edge ",
                          topo.name(topo.edge_source(e)), "->",
                          topo.name(topo.edge_target(e)),
                          " carries multiple messages"));
        }
      }
    }
  }
  for (std::int32_t s = 0; s < machines; ++s) {
    for (std::int32_t d = 0; d < machines; ++d) {
      const std::size_t index = static_cast<std::size_t>(s) * machines + d;
      if (have[index] != want[index]) {
        violate(str_cat("message ", s, "->", d, " scheduled ", have[index],
                        " times (pattern wants ", want[index], ")"));
      }
    }
  }

  if (options.require_optimal_phase_count) {
    // For arbitrary patterns the lower bound is the pattern load.
    std::vector<std::int64_t> edge_load(
        static_cast<std::size_t>(topo.directed_edge_count()), 0);
    for (const Message& m : expected) {
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        edge_load[static_cast<std::size_t>(e)] += 1;
      }
    }
    std::int64_t load = 0;
    for (const std::int64_t l : edge_load) load = std::max(load, l);
    if (schedule.phase_count() < load) {
      violate(str_cat("phase count ", schedule.phase_count(),
                      " below the pattern load ", load,
                      " — the schedule cannot be contention-free"));
    }
  }
  return report;
}

void require_contention_free(const topology::Topology& topo,
                             const Schedule& schedule) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  EdgeUse edge_use(topo.directed_edge_count());
  std::vector<topology::EdgeId> path;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      const Message& m = sm.message;
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines && m.src != m.dst,
                   "malformed message " << m.src << "->" << m.dst
                                        << " in phase " << p);
      topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                     path);
      for (const topology::EdgeId e : path) {
        AAPC_REQUIRE(edge_use.use(e, p) <= 1,
                     "schedule is not contention-free: phase "
                         << p << " sends multiple messages over edge "
                         << topo.name(topo.edge_source(e)) << "->"
                         << topo.name(topo.edge_target(e))
                         << " (corrupted or mis-repaired schedule?)");
      }
    }
  }
}

}  // namespace aapc::core
