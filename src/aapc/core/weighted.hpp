// Heterogeneous-link generalization of the paper's scheduling model.
//
// §3's peak formula and the §4 optimality argument assume every link
// runs at one nominal rate. Under degraded operation (faults/repair)
// links run at *fractions* of nominal, and the right objective is no
// longer phase count: a phase is as slow as its slowest message, so a
// schedule's completion time is the sum over phases of the largest
// per-message slowness. This module restates the bottleneck-load lower
// bound and the greedy scheduler in that weighted model:
//
//   slowness(m)  = 1 / min rate on m's tree path      (1 = nominal)
//   cost(S)      = sum over phases p of max slowness in p
//   weighted load = max over directed edges e of  n_e / rate(e)
//
// Any contention-free schedule satisfies cost >= weighted load (the
// n_e messages of edge e occupy n_e distinct phases, each costing at
// least 1/rate(e)). With uniform rates both sides divide by the common
// rate and the bound degenerates to the paper's phase-count bound.
//
// build_aapc_schedule_weighted() is the drop-in scheduler for degraded
// trees: on uniform rates it returns exactly the paper's optimal
// schedule; otherwise it races the rate-blind optimal schedule against
// a slowest-first greedy (which aligns messages of degraded links into
// shared slow phases instead of paying for each separately) and keeps
// whichever costs less — so it is never worse than scheduling blind.
#pragma once

#include <vector>

#include "aapc/core/greedy.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {

/// Relative capacity per physical link, in (0, 1] with 1 = nominal
/// (the shape faults::link_factors_at produces). Size must equal
/// topo.link_count(); every entry must be > 0 — a down link cannot
/// carry a schedule, re-elect the tree first (faults::elect_residual).
using LinkRates = std::vector<double>;

/// True when every rate equals the first (the uniform special case all
/// weighted entry points reduce to the unweighted model for).
bool uniform_rates(const LinkRates& link_rate);

/// Weighted bottleneck load of `pattern`: max over directed edges of
/// n_e / rate(e). Lower-bounds weighted_schedule_cost of any
/// contention-free schedule realizing the pattern.
double weighted_pattern_load(const topology::Topology& topo,
                             const Pattern& pattern,
                             const LinkRates& link_rate);

/// Slowness of one message: 1 / min rate along its tree path.
double message_slowness(const topology::Topology& topo, const Message& message,
                        const LinkRates& link_rate);

/// Cost of `schedule` at `link_rate`: sum over phases of the largest
/// message slowness (empty phases cost 0). Uniform nominal rates make
/// this exactly the phase count.
double weighted_schedule_cost(const topology::Topology& topo,
                              const Schedule& schedule,
                              const LinkRates& link_rate);

/// Slowest-first first-fit: messages sorted by descending slowness
/// (path length, then input order, as tie-breaks), placed greedily into
/// the first phase with their path's directed edges free. Because
/// placement order is monotone in slowness, a message never raises the
/// cost of the phase it joins — the schedule's cost is the sum of the
/// phase-opening messages' slownesses, which is what packs the traffic
/// of several degraded links into *shared* slow phases. Contention-free
/// by construction; phase count is not optimized.
Schedule weighted_greedy_schedule(const topology::Topology& topo,
                                  const Pattern& pattern,
                                  const LinkRates& link_rate);

/// AAPC schedule for a tree with heterogeneous link rates. Uniform
/// rates return build_aapc_schedule(topo) verbatim (bit-identical).
/// Otherwise both the rate-blind optimal schedule and the weighted
/// greedy are built and the one with the lower weighted cost wins
/// (ties keep the optimal-phase-count schedule). The result is always
/// contention-free and never costs more than the paper's schedule at
/// the given rates.
Schedule build_aapc_schedule_weighted(const topology::Topology& topo,
                                      const LinkRates& link_rate);

}  // namespace aapc::core
