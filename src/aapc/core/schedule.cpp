#include "aapc/core/schedule.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "aapc/common/error.hpp"

namespace aapc::core {

const char* collective_kind_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kAlltoall:
      return "alltoall";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kReduceScatter:
      return "reduce_scatter";
    case CollectiveKind::kSparseAlltoall:
      return "sparse_alltoall";
  }
  return "unknown";
}

CollectiveKind parse_collective_kind(std::string_view name) {
  if (name == "alltoall") return CollectiveKind::kAlltoall;
  if (name == "allgather") return CollectiveKind::kAllgather;
  if (name == "reduce_scatter") return CollectiveKind::kReduceScatter;
  if (name == "sparse_alltoall") return CollectiveKind::kSparseAlltoall;
  throw InvalidArgument("unknown collective kind '" + std::string(name) +
                        "' (want alltoall, allgather, reduce_scatter, or "
                        "sparse_alltoall)");
}

bool collective_kind_valid(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(CollectiveKind::kSparseAlltoall);
}

PhaseSpan Schedule::phase(std::int32_t p) const {
  AAPC_REQUIRE(p >= 0 && p < phase_count(),
               "phase " << p << " out of range [0," << phase_count() << ")");
  const auto begin = static_cast<std::size_t>(phase_begin[p]);
  const auto end = static_cast<std::size_t>(phase_begin[p + 1]);
  return PhaseSpan(messages.data() + begin, end - begin);
}

std::int64_t Schedule::phase_size(std::int32_t p) const {
  AAPC_REQUIRE(p >= 0 && p < phase_count(),
               "phase " << p << " out of range [0," << phase_count() << ")");
  return phase_begin[p + 1] - phase_begin[p];
}

Schedule Schedule::from_staged(std::vector<ScheduledMessage> staged,
                               std::int64_t total_phases) {
  AAPC_REQUIRE(total_phases >= 0, "negative phase count");
  Schedule out;
  out.phase_begin.assign(static_cast<std::size_t>(total_phases) + 1, 0);
  for (const ScheduledMessage& sm : staged) {
    AAPC_REQUIRE(sm.phase >= 0 && sm.phase < total_phases,
                 "staged message phase " << sm.phase << " out of range [0,"
                                         << total_phases << ")");
    out.phase_begin[static_cast<std::size_t>(sm.phase) + 1] += 1;
  }
  for (std::size_t p = 1; p < out.phase_begin.size(); ++p) {
    out.phase_begin[p] += out.phase_begin[p - 1];
  }
  // Stable counting sort: a running cursor per phase preserves staged
  // order within a phase (== the old per-phase insertion order).
  std::vector<std::int64_t> cursor(out.phase_begin.begin(),
                                   out.phase_begin.end() - 1);
  out.messages.resize(staged.size());
  for (const ScheduledMessage& sm : staged) {
    out.messages[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(sm.phase)]++)] = sm;
  }
  return out;
}

Schedule Schedule::from_phase_lists(
    const std::vector<std::vector<Message>>& lists, MessageScope scope) {
  Schedule out;
  out.phase_begin.assign(lists.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t p = 0; p < lists.size(); ++p) {
    total += lists[p].size();
    out.phase_begin[p + 1] = static_cast<std::int64_t>(total);
  }
  out.messages.reserve(total);
  for (std::size_t p = 0; p < lists.size(); ++p) {
    for (const Message& m : lists[p]) {
      out.messages.push_back(
          ScheduledMessage{m, static_cast<std::int32_t>(p), scope});
    }
  }
  return out;
}

std::vector<std::vector<Message>> Schedule::phase_lists() const {
  std::vector<std::vector<Message>> lists(
      static_cast<std::size_t>(phase_count()));
  for (std::int32_t p = 0; p < phase_count(); ++p) {
    auto& list = lists[static_cast<std::size_t>(p)];
    list.reserve(static_cast<std::size_t>(phase_size(p)));
    for (const ScheduledMessage& sm : phase(p)) list.push_back(sm.message);
  }
  return lists;
}

std::string Schedule::to_string(const topology::Topology& topo) const {
  std::ostringstream os;
  for (std::int32_t p = 0; p < phase_count(); ++p) {
    os << "phase " << p << ":";
    for (const ScheduledMessage& sm : phase(p)) {
      os << ' ' << topo.name(topo.machine_node(sm.message.src)) << "->"
         << topo.name(topo.machine_node(sm.message.dst));
    }
    os << '\n';
  }
  return os.str();
}

void ScheduleBuilder::add(std::int64_t phase, Rank src, Rank dst,
                          MessageScope scope) {
  AAPC_CHECK(phase >= 0);
  AAPC_CHECK(src != dst);
  staged_.push_back(ScheduledMessage{Message{src, dst},
                                     static_cast<std::int32_t>(phase), scope});
}

Schedule ScheduleBuilder::build(std::int64_t total_phases) && {
  return Schedule::from_staged(std::move(staged_), total_phases);
}

std::vector<Rank> invert_permutation(const std::vector<Rank>& perm) {
  const auto n = static_cast<Rank>(perm.size());
  std::vector<Rank> inverse(perm.size(), -1);
  for (Rank i = 0; i < n; ++i) {
    const Rank image = perm[static_cast<std::size_t>(i)];
    AAPC_REQUIRE(image >= 0 && image < n,
                 "permutation entry " << image << " out of range [0," << n
                                      << ")");
    AAPC_REQUIRE(inverse[static_cast<std::size_t>(image)] == -1,
                 "permutation maps two ranks to " << image);
    inverse[static_cast<std::size_t>(image)] = i;
  }
  return inverse;
}

Schedule relabel_schedule(const Schedule& schedule,
                          const std::vector<Rank>& perm) {
  // Validate once up front (also proves perm is a bijection).
  invert_permutation(perm);
  const auto n = static_cast<Rank>(perm.size());
  auto map_rank = [&](Rank r) -> Rank {
    AAPC_REQUIRE(r >= 0 && r < n,
                 "schedule rank " << r << " not covered by the "
                                  << "relabeling permutation (size " << n
                                  << ")");
    return perm[static_cast<std::size_t>(r)];
  };
  Schedule out;
  out.phase_begin = schedule.phase_begin;
  out.kind = schedule.kind;
  out.messages.reserve(schedule.messages.size());
  for (const ScheduledMessage& sm : schedule.messages) {
    ScheduledMessage mapped = sm;
    mapped.message.src = map_rank(sm.message.src);
    mapped.message.dst = map_rank(sm.message.dst);
    out.messages.push_back(mapped);
  }
  return out;
}

}  // namespace aapc::core
