#include "aapc/core/schedule.hpp"

#include <sstream>
#include <vector>

#include "aapc/common/error.hpp"

namespace aapc::core {

std::string Schedule::to_string(const topology::Topology& topo) const {
  std::ostringstream os;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    os << "phase " << p << ":";
    for (const Message& m : phases[p]) {
      os << ' ' << topo.name(topo.machine_node(m.src)) << "->"
         << topo.name(topo.machine_node(m.dst));
    }
    os << '\n';
  }
  return os.str();
}

std::vector<Rank> invert_permutation(const std::vector<Rank>& perm) {
  const auto n = static_cast<Rank>(perm.size());
  std::vector<Rank> inverse(perm.size(), -1);
  for (Rank i = 0; i < n; ++i) {
    const Rank image = perm[static_cast<std::size_t>(i)];
    AAPC_REQUIRE(image >= 0 && image < n,
                 "permutation entry " << image << " out of range [0," << n
                                      << ")");
    AAPC_REQUIRE(inverse[static_cast<std::size_t>(image)] == -1,
                 "permutation maps two ranks to " << image);
    inverse[static_cast<std::size_t>(image)] = i;
  }
  return inverse;
}

Schedule relabel_schedule(const Schedule& schedule,
                          const std::vector<Rank>& perm) {
  // Validate once up front (also proves perm is a bijection).
  invert_permutation(perm);
  const auto n = static_cast<Rank>(perm.size());
  auto map_rank = [&](Rank r) -> Rank {
    AAPC_REQUIRE(r >= 0 && r < n,
                 "schedule rank " << r << " not covered by the "
                                  << "relabeling permutation (size " << n
                                  << ")");
    return perm[static_cast<std::size_t>(r)];
  };
  Schedule out;
  out.phases.resize(schedule.phases.size());
  for (std::size_t p = 0; p < schedule.phases.size(); ++p) {
    out.phases[p].reserve(schedule.phases[p].size());
    for (const Message& m : schedule.phases[p]) {
      out.phases[p].push_back(Message{map_rank(m.src), map_rank(m.dst)});
    }
  }
  out.messages.reserve(schedule.messages.size());
  for (const ScheduledMessage& sm : schedule.messages) {
    ScheduledMessage mapped = sm;
    mapped.message.src = map_rank(sm.message.src);
    mapped.message.dst = map_rank(sm.message.dst);
    out.messages.push_back(mapped);
  }
  return out;
}

}  // namespace aapc::core
