#include "aapc/core/schedule.hpp"

#include <sstream>

namespace aapc::core {

std::string Schedule::to_string(const topology::Topology& topo) const {
  std::ostringstream os;
  for (std::size_t p = 0; p < phases.size(); ++p) {
    os << "phase " << p << ":";
    for (const Message& m : phases[p]) {
      os << ' ' << topo.name(topo.machine_node(m.src)) << "->"
         << topo.name(topo.machine_node(m.dst));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace aapc::core
