#include "aapc/core/global_schedule.hpp"

#include "aapc/common/error.hpp"

namespace aapc::core {

GlobalSchedule::GlobalSchedule(std::vector<std::int32_t> sizes)
    : sizes_(std::move(sizes)) {
  AAPC_REQUIRE(sizes_.size() >= 2, "need at least two subtrees");
  std::int64_t total = 0;
  prefix_.assign(sizes_.size() + 1, 0);
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    AAPC_REQUIRE(sizes_[i] >= 1, "subtree " << i << " is empty");
    AAPC_REQUIRE(i == 0 || sizes_[i] <= sizes_[i - 1],
                 "subtree sizes must be non-increasing");
    prefix_[i + 1] = prefix_[i] + sizes_[i];
    total += sizes_[i];
  }
  total_phases_ = static_cast<std::int64_t>(sizes_[0]) * (total - sizes_[0]);
}

std::int64_t GlobalSchedule::group_start(std::int32_t i, std::int32_t j) const {
  AAPC_CHECK(i >= 0 && i < subtree_count());
  AAPC_CHECK(j >= 0 && j < subtree_count());
  AAPC_CHECK(i != j);
  if (j > i) {
    // Messages in ti -> tj start at |Mi| * (|M(i+1)| + ... + |M(j-1)|).
    return static_cast<std::int64_t>(sizes_[i]) * (prefix_[j] - prefix_[i + 1]);
  }
  // i > j: start at |M0|*(|M|-|M0|) - |Mj| * (|M(j+1)| + ... + |Mi|).
  return total_phases_ -
         static_cast<std::int64_t>(sizes_[j]) * (prefix_[i + 1] - prefix_[j + 1]);
}

std::int64_t GlobalSchedule::group_length(std::int32_t i,
                                          std::int32_t j) const {
  AAPC_CHECK(i != j);
  return static_cast<std::int64_t>(sizes_[i]) * sizes_[j];
}

std::pair<std::int32_t, std::int32_t> GlobalSchedule::sending_group_at(
    std::int32_t from, std::int64_t p) const {
  for (std::int32_t j = 0; j < subtree_count(); ++j) {
    if (j == from) continue;
    const std::int64_t start = group_start(from, j);
    if (p >= start && p < start + group_length(from, j)) {
      return {from, j};
    }
  }
  return {-1, -1};
}

std::int64_t GlobalSchedule::ring_phase(std::int32_t i, std::int32_t j,
                                        std::int32_t k) {
  AAPC_CHECK(i != j && i >= 0 && j >= 0 && i < k && j < k);
  return j > i ? (j - i - 1) : (k - 1) - (i - j);
}

}  // namespace aapc::core
