#include "aapc/core/scheduler.hpp"

#include "aapc/common/error.hpp"

namespace aapc::core {

Schedule build_aapc_schedule(const topology::Topology& topo,
                             const SchedulerOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  if (machines <= 1) {
    return Schedule{};
  }
  if (machines == 2) {
    Schedule schedule;
    schedule.phases.resize(1);
    schedule.phases[0] = {Message{0, 1}, Message{1, 0}};
    schedule.messages = {
        ScheduledMessage{Message{0, 1}, 0, MessageScope::kGlobal},
        ScheduledMessage{Message{1, 0}, 0, MessageScope::kGlobal}};
    return schedule;
  }
  const Decomposition dec = decompose(topo);
  return assign_messages(dec, options.assignment);
}

}  // namespace aapc::core
