#include "aapc/core/scheduler.hpp"

#include "aapc/common/error.hpp"

namespace aapc::core {

Schedule build_aapc_schedule(const topology::Topology& topo,
                             const SchedulerOptions& options) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  const std::int32_t machines = topo.machine_count();
  if (machines <= 1) {
    return Schedule{};
  }
  if (machines == 2) {
    ScheduleBuilder builder;
    builder.add(0, 0, 1, MessageScope::kGlobal);
    builder.add(0, 1, 0, MessageScope::kGlobal);
    return std::move(builder).build(1);
  }
  const Decomposition dec = decompose(topo);
  if (options.hierarchical) {
    return assign_messages_hierarchical(dec, options.assignment,
                                        options.runner);
  }
  return assign_messages(dec, options.assignment);
}

}  // namespace aapc::core
