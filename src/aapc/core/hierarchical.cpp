#include "aapc/core/hierarchical.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"
#include "aapc/core/global_schedule.hpp"
#include "aapc/core/patterns.hpp"

namespace aapc::core {

namespace {

/// Which Figure-4 step a task's units belong to (tasks never span steps).
enum class Step : std::int8_t {
  kRootSends = 1,     // t0 -> tj
  kSendsIntoRoot,     // ti -> t0
  kRootLocals,        // locals inside t0
  kDownPairs,         // ti -> tj, i > j >= 1
  kSubtreeLocals,     // locals inside ti, embedded in ti -> t(i-1)
  kUpPairs,           // ti -> tj, 0 < i < j
};

/// A contiguous run of whole emission units within one step, plus its
/// precomputed slice [offset, offset + count) of the staged arena.
struct TaskDesc {
  Step step;
  std::int32_t i = 0;  // unit cursor: subtree (steps 1,2,5) or pair (i,j)
  std::int32_t j = 0;
  std::int64_t offset = 0;
  std::int64_t count = 0;
};

/// Read-only state shared by every task.
struct Context {
  const Decomposition* dec;
  const GlobalSchedule* global;
  const std::vector<std::int32_t>* sizes;
  std::int64_t P;
  std::int32_t m0;
  std::int32_t k;
  bool broadcast_step6;
  // Table-3 mapping: within-t0 sender/receiver index per phase.
  std::vector<std::int32_t> t0_sender;
  std::vector<std::int32_t> t0_receiver;
};

Rank rank_at(const Context& ctx, std::int32_t subtree, std::int32_t index) {
  return ctx.dec->subtrees[static_cast<std::size_t>(subtree)]
                          [static_cast<std::size_t>(index)];
}

void emit(ScheduledMessage* out, std::int64_t at, Rank src, Rank dst,
          std::int64_t phase, MessageScope scope) {
  out[at] = ScheduledMessage{Message{src, dst},
                             static_cast<std::int32_t>(phase), scope};
}

// ---- per-unit emission (canonical order within each unit) ----

std::int64_t emit_root_sends(const Context& ctx, std::int32_t j,
                             ScheduledMessage* out, std::int64_t at) {
  const std::int64_t start = ctx.global->group_start(0, j);
  const std::int64_t length = ctx.global->group_length(0, j);
  const std::int32_t mj = (*ctx.sizes)[static_cast<std::size_t>(j)];
  for (std::int64_t q = 0; q < length; ++q) {
    const std::int64_t p = start + q;
    const std::int32_t sender = ctx.t0_sender[static_cast<std::size_t>(p)];
    const auto receiver = static_cast<std::int32_t>(positive_mod(p - ctx.P, mj));
    emit(out, at++, rank_at(ctx, 0, sender), rank_at(ctx, j, receiver), p,
         MessageScope::kGlobal);
  }
  return at;
}

std::int64_t emit_sends_into_root(const Context& ctx, std::int32_t i,
                                  ScheduledMessage* out, std::int64_t at) {
  const std::int64_t start = ctx.global->group_start(i, 0);
  const std::int64_t length = ctx.global->group_length(i, 0);
  for (std::int64_t q = 0; q < length; ++q) {
    const std::int64_t p = start + q;
    const auto sender = static_cast<std::int32_t>(q / ctx.m0);  // broadcast
    const std::int32_t receiver = ctx.t0_receiver[static_cast<std::size_t>(p)];
    emit(out, at++, rank_at(ctx, i, sender), rank_at(ctx, 0, receiver), p,
         MessageScope::kGlobal);
  }
  return at;
}

std::int64_t emit_root_locals(const Context& ctx, ScheduledMessage* out,
                              std::int64_t at) {
  const std::int32_t m0 = ctx.m0;
  std::vector<char> done(static_cast<std::size_t>(m0) * m0, 0);
  for (std::int64_t p = 0; p < static_cast<std::int64_t>(m0) * (m0 - 1);
       ++p) {
    const std::int32_t src = ctx.t0_receiver[static_cast<std::size_t>(p)];
    const std::int32_t dst = ctx.t0_sender[static_cast<std::size_t>(p)];
    AAPC_CHECK_MSG(src != dst, "Table-3 mapping yielded src == dst in the "
                                   << "first |M0|*(|M0|-1) phases at " << p);
    char& seen = done[static_cast<std::size_t>(src) * m0 + dst];
    AAPC_CHECK_MSG(!seen, "duplicate t0 local " << src << "->" << dst);
    seen = 1;
    emit(out, at++, rank_at(ctx, 0, src), rank_at(ctx, 0, dst), p,
         MessageScope::kLocal);
  }
  return at;
}

std::int64_t emit_down_pair(const Context& ctx, std::int32_t i,
                            std::int32_t j, ScheduledMessage* out,
                            std::int64_t at) {
  const std::int64_t start = ctx.global->group_start(i, j);
  const std::int64_t length = ctx.global->group_length(i, j);
  const std::int32_t mj = (*ctx.sizes)[static_cast<std::size_t>(j)];
  for (std::int64_t q = 0; q < length; ++q) {
    const auto sender = static_cast<std::int32_t>(q / mj);
    const auto receiver = static_cast<std::int32_t>(q % mj);
    emit(out, at++, rank_at(ctx, i, sender), rank_at(ctx, j, receiver),
         start + q, MessageScope::kGlobal);
  }
  return at;
}

std::int64_t emit_subtree_locals(const Context& ctx, std::int32_t i,
                                 ScheduledMessage* out, std::int64_t at) {
  const std::int32_t mi = (*ctx.sizes)[static_cast<std::size_t>(i)];
  if (mi <= 1) return at;
  const std::int32_t mprev = (*ctx.sizes)[static_cast<std::size_t>(i - 1)];
  const std::int64_t start = ctx.global->group_start(i, i - 1);
  const std::int64_t length = ctx.global->group_length(i, i - 1);
  std::vector<char> done(static_cast<std::size_t>(mi) * mi, 0);
  std::int32_t scheduled = 0;
  for (std::int64_t q = 0; q < length; ++q) {
    const std::int64_t p = start + q;
    const auto gsend = static_cast<std::int32_t>(q / mprev);
    const auto drecv =
        static_cast<std::int32_t>(positive_mod(p - ctx.P, mi));
    if (gsend == drecv) continue;
    char& seen = done[static_cast<std::size_t>(drecv) * mi + gsend];
    if (seen) continue;
    seen = 1;
    ++scheduled;
    emit(out, at++, rank_at(ctx, i, drecv), rank_at(ctx, i, gsend), p,
         MessageScope::kLocal);
  }
  AAPC_CHECK_MSG(scheduled == mi * (mi - 1),
                 "subtree t" << i << " embedded only " << scheduled << "/"
                             << mi * (mi - 1) << " local messages");
  return at;
}

std::int64_t emit_up_pair(const Context& ctx, std::int32_t i, std::int32_t j,
                          ScheduledMessage* out, std::int64_t at) {
  const std::int64_t start = ctx.global->group_start(i, j);
  const std::int32_t mi = (*ctx.sizes)[static_cast<std::size_t>(i)];
  const std::int32_t mj = (*ctx.sizes)[static_cast<std::size_t>(j)];
  const std::int64_t length =
      static_cast<std::int64_t>(mi) * static_cast<std::int64_t>(mj);
  for (std::int64_t q = 0; q < length; ++q) {
    const std::int32_t sender =
        ctx.broadcast_step6 ? static_cast<std::int32_t>(q / mj)
                            : rotate_sender_at(mi, mj, q);
    const auto receiver = static_cast<std::int32_t>(q % mj);
    emit(out, at++, rank_at(ctx, i, sender), rank_at(ctx, j, receiver),
         start + q, MessageScope::kGlobal);
  }
  return at;
}

/// Messages a unit emits, without emitting them (for task slicing).
std::int64_t unit_count(const Context& ctx, Step step, std::int32_t i,
                        std::int32_t j) {
  switch (step) {
    case Step::kRootSends:
      return ctx.global->group_length(0, j);
    case Step::kSendsIntoRoot:
      return ctx.global->group_length(i, 0);
    case Step::kRootLocals:
      return static_cast<std::int64_t>(ctx.m0) * (ctx.m0 - 1);
    case Step::kDownPairs:
    case Step::kUpPairs:
      return ctx.global->group_length(i, j);
    case Step::kSubtreeLocals: {
      const std::int64_t mi = (*ctx.sizes)[static_cast<std::size_t>(i)];
      return mi <= 1 ? 0 : mi * (mi - 1);
    }
  }
  return 0;
}

/// Advances a unit cursor within `step` to the next unit; returns false
/// when the step is exhausted. Cursor order == the flat staging order.
bool advance(const Context& ctx, Step step, std::int32_t& i,
             std::int32_t& j) {
  switch (step) {
    case Step::kRootSends:
      return ++j < ctx.k;
    case Step::kSendsIntoRoot:
    case Step::kSubtreeLocals:
      return ++i < ctx.k;
    case Step::kRootLocals:
      return false;  // single unit
    case Step::kDownPairs:
      if (++j < i) return true;
      j = 1;
      return ++i < ctx.k;
    case Step::kUpPairs:
      if (++j < ctx.k) return true;
      ++i;
      j = i + 1;
      return j < ctx.k;
  }
  return false;
}

/// First unit cursor of `step`, or false when the step has no units.
bool first_unit(const Context& ctx, Step step, std::int32_t& i,
                std::int32_t& j) {
  switch (step) {
    case Step::kRootSends:
      i = 0;
      j = 1;
      return ctx.k > 1;
    case Step::kSendsIntoRoot:
    case Step::kSubtreeLocals:
      i = 1;
      j = 0;
      return ctx.k > 1;
    case Step::kRootLocals:
      i = 0;
      j = 0;
      return true;
    case Step::kDownPairs:
      i = 2;
      j = 1;
      return ctx.k > 2;
    case Step::kUpPairs:
      i = 1;
      j = 2;
      return ctx.k > 2;
  }
  return false;
}

/// Runs one task: emits its run of units into the shared staged arena at
/// the precomputed slice. Throws on internal inconsistency (caught by
/// the task wrapper and rethrown after the join).
void run_task(const Context& ctx, const TaskDesc& task,
              ScheduledMessage* staged) {
  std::int64_t at = task.offset;
  const std::int64_t end = task.offset + task.count;
  std::int32_t i = task.i;
  std::int32_t j = task.j;
  while (at < end) {
    switch (task.step) {
      case Step::kRootSends:
        at = emit_root_sends(ctx, j, staged, at);
        break;
      case Step::kSendsIntoRoot:
        at = emit_sends_into_root(ctx, i, staged, at);
        break;
      case Step::kRootLocals:
        at = emit_root_locals(ctx, staged, at);
        break;
      case Step::kDownPairs:
        at = emit_down_pair(ctx, i, j, staged, at);
        break;
      case Step::kSubtreeLocals:
        at = emit_subtree_locals(ctx, i, staged, at);
        break;
      case Step::kUpPairs:
        at = emit_up_pair(ctx, i, j, staged, at);
        break;
    }
    if (at < end) {
      AAPC_CHECK_MSG(advance(ctx, task.step, i, j),
                     "task ran out of units with "
                         << end - at << " staged messages still to emit");
    }
  }
  AAPC_CHECK_MSG(at == end, "task overran its staged slice by " << at - end);
}

}  // namespace

Schedule assign_messages_hierarchical(const Decomposition& dec,
                                      const AssignmentOptions& options,
                                      const TaskRunner& runner) {
  HierarchicalOptions opts;
  opts.assignment = options;
  return assign_messages_hierarchical(dec, opts, runner);
}

Schedule assign_messages_hierarchical(const Decomposition& dec,
                                      const HierarchicalOptions& options,
                                      const TaskRunner& runner) {
  const std::int32_t k = dec.subtree_count();
  AAPC_CHECK(k >= 2);

  Context ctx;
  std::vector<std::int32_t> sizes(static_cast<std::size_t>(k));
  for (std::int32_t i = 0; i < k; ++i) {
    sizes[static_cast<std::size_t>(i)] = dec.subtree_size(i);
  }
  const GlobalSchedule global(sizes);
  ctx.dec = &dec;
  ctx.global = &global;
  ctx.sizes = &sizes;
  ctx.P = global.total_phases();
  ctx.m0 = sizes[0];
  ctx.k = k;
  ctx.broadcast_step6 = options.assignment.step6 ==
                        AssignmentOptions::Step6Pattern::kBroadcast;

  // Root-level prepass (Table 3): the per-phase t0 sender/receiver
  // indices. O(P) with a tiny constant; everything downstream is
  // read-only against these two arrays, which is what decouples the
  // units from each other.
  ctx.t0_sender.assign(static_cast<std::size_t>(ctx.P), -1);
  ctx.t0_receiver.assign(static_cast<std::size_t>(ctx.P), -1);
  for (std::int32_t j = 1; j < k; ++j) {
    const std::int64_t start = global.group_start(0, j);
    const std::int64_t length = global.group_length(0, j);
    const std::int32_t mj = sizes[static_cast<std::size_t>(j)];
    for (std::int64_t q = 0; q < length; ++q) {
      ctx.t0_sender[static_cast<std::size_t>(start + q)] =
          rotate_sender_at(ctx.m0, mj, q);
    }
  }
  for (std::int64_t p = 0; p < ctx.P; ++p) {
    AAPC_CHECK_MSG(ctx.t0_sender[static_cast<std::size_t>(p)] != -1,
                   "t0 groups leave phase " << p << " uncovered");
    const std::int64_t round = p / ctx.m0;
    const auto shift = static_cast<std::int32_t>(round % ctx.m0) + 1;
    ctx.t0_receiver[static_cast<std::size_t>(p)] =
        static_cast<std::int32_t>(positive_mod(
            ctx.t0_sender[static_cast<std::size_t>(p)] + shift, ctx.m0));
  }

  // Slice the canonical unit stream into tasks: accumulate whole units
  // until the per-task target is reached. Offsets are exact, so tasks
  // write disjoint slices of one shared arena — merge is free.
  const std::int64_t machines = dec.machine_count();
  const std::int64_t total = machines * (machines - 1);
  const std::int64_t target =
      options.messages_per_task > 0
          ? options.messages_per_task
          : std::max<std::int64_t>(1 << 16, total / 32);

  std::vector<TaskDesc> descs;
  std::int64_t offset = 0;
  for (const Step step :
       {Step::kRootSends, Step::kSendsIntoRoot, Step::kRootLocals,
        Step::kDownPairs, Step::kSubtreeLocals, Step::kUpPairs}) {
    std::int32_t i = 0;
    std::int32_t j = 0;
    if (!first_unit(ctx, step, i, j)) continue;
    TaskDesc current{step, i, j, offset, 0};
    bool more = true;
    while (more) {
      current.count += unit_count(ctx, step, i, j);
      more = advance(ctx, step, i, j);
      if (current.count >= target || !more) {
        if (current.count > 0) {
          offset += current.count;
          descs.push_back(current);
        }
        if (more) current = TaskDesc{step, i, j, offset, 0};
      }
    }
  }
  AAPC_CHECK_MSG(offset == total, "unit decomposition stages "
                                      << offset << " of " << total
                                      << " AAPC messages");

  std::vector<ScheduledMessage> staged(static_cast<std::size_t>(total));
  std::vector<std::string> errors(descs.size());
  std::vector<char> completed(descs.size(), 0);
  std::vector<Task> tasks;
  tasks.reserve(descs.size());
  for (std::size_t t = 0; t < descs.size(); ++t) {
    const TaskDesc& desc = descs[t];
    std::string& error = errors[t];
    char& done = completed[t];
    ScheduledMessage* out = staged.data();
    tasks.push_back([&ctx, desc, out, &error, &done]() {
      try {
        run_task(ctx, desc, out);
      } catch (const std::exception& e) {
        error = e.what();
      } catch (...) {
        error = "unknown emission failure";
      }
      done = 1;
    });
  }
  if (runner) {
    runner(tasks);
  } else {
    for (const Task& task : tasks) task();
  }
  for (std::size_t t = 0; t < errors.size(); ++t) {
    AAPC_CHECK_MSG(completed[t],
                   "task runner returned without executing task "
                       << t << " of " << descs.size()
                       << "; its arena slice is unwritten");
    if (!errors[t].empty()) {
      throw InternalError(str_cat("hierarchical assignment task ", t,
                                  " failed: ", errors[t]));
    }
  }

  // Merge across the root: stable counting sort into the phase arena —
  // identical to what the flat builder produces from the same staged
  // order.
  return Schedule::from_staged(std::move(staged), ctx.P);
}

}  // namespace aapc::core
