// Collective schedule builders beyond AAPC.
//
// The phase-scheduling pipeline is collective-agnostic: a Schedule is
// just a contention-free phase partition of some message multiset.
// This module supplies the multisets and builders for the non-AAPC
// kinds in CollectiveKind:
//
//  * allgather / reduce_scatter — pipeline (ring) schedules on the
//    tree. Machines are leaves, so switches cannot combine or split
//    blocks; the bandwidth-optimal realization is a logical ring over
//    the machines in DFS (preorder) leaf order. The n consecutive-leaf
//    paths of a DFS ring cover each directed tree edge at most once,
//    so every round is contention-free, and n−1 rounds match the
//    per-access-link lower bound of n−1 block times (each machine's
//    down-link must carry the other n−1 blocks). Allgather runs the
//    ring forward; reduce_scatter — its communication dual — runs it
//    in reverse.
//  * sparse_alltoall — personalized exchange restricted to a neighbor
//    set per rank (halo exchanges, graph partitions). The induced
//    message set goes through the greedy contention-free scheduler; a
//    fully-dense neighbor specification degenerates to the paper's
//    optimal AAPC schedule bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/core/greedy.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {

/// Per-rank destination sets for sparse_alltoall: neighbors[r] lists
/// the ranks rank r sends a (distinct) block to. Size must equal the
/// machine count; sets need not be symmetric.
using SparseNeighbors = std::vector<std::vector<Rank>>;

/// Machine ranks in DFS preorder of the tree (root chosen by the
/// topology's own rooting, children visited in stored neighbor order).
/// Consecutive entries — including the wrap-around pair — have
/// edge-disjoint tree paths when taken together as a ring, which is
/// what makes each ring round contention-free.
std::vector<Rank> dfs_machine_order(const topology::Topology& topo);

/// Bandwidth-optimal allgather pipeline: n−1 phases, phase r sends
/// order[p] → order[(p+1) mod n] for every p. Empty for n <= 1.
Schedule build_allgather_schedule(const topology::Topology& topo);

/// Bandwidth-optimal reduce_scatter pipeline: the reverse ring,
/// phase r sends order[p] → order[(p+n−1) mod n]. Empty for n <= 1.
Schedule build_reduce_scatter_schedule(const topology::Topology& topo);

/// Validates and canonicalizes a neighbor specification against a
/// machine count: requires one set per rank and in-range ids; returns
/// sorted, deduplicated sets with self-entries dropped. Throws
/// InvalidArgument on shape violations.
SparseNeighbors normalize_neighbors(std::int32_t machine_count,
                                    const SparseNeighbors& neighbors);

/// Whether normalized neighbor sets specify the complete AAPC pattern
/// (every rank sends to every other rank).
bool neighbors_fully_dense(std::int32_t machine_count,
                           const SparseNeighbors& normalized);

/// Contention-free schedule of the induced sparse pattern. Fully-dense
/// neighbor sets take the paper's optimal AAPC path (messages and
/// phase structure bit-identical to build_aapc_schedule); anything
/// sparser goes through greedy first-fit. `neighbors` need not be
/// normalized. The result's kind is kSparseAlltoall either way.
Schedule build_sparse_alltoall_schedule(const topology::Topology& topo,
                                        const SparseNeighbors& neighbors);

/// The message multiset a schedule of `kind` must realize on `topo`.
/// Allgather/reduce_scatter repeat their ring n−1 times (one round per
/// pipelined block); sparse uses the induced pattern (`neighbors`
/// required, normalized internally); alltoall is aapc_pattern.
Pattern collective_pattern(const topology::Topology& topo,
                           CollectiveKind kind,
                           const SparseNeighbors& neighbors = {});

/// Lower bound on contention-free phases for `kind` on `topo`: the
/// pattern load of collective_pattern. For the ring kinds this equals
/// n−1, the bandwidth-optimality bound the builders achieve.
std::int64_t collective_phase_lower_bound(
    const topology::Topology& topo, CollectiveKind kind,
    const SparseNeighbors& neighbors = {});

/// Verify a schedule against its own kind's semantics: exact multiset
/// coverage + contention freedom, with phase-count optimality required
/// for alltoall/allgather/reduce_scatter (where the builders are
/// optimal) and waived for sparse (greedy only lower-bounds). The ring
/// kinds accept ANY single Hamiltonian ring over the machines in n-1
/// phases — the service rewrites cached canonical artifacts through a
/// tree isomorphism, so a served ring need not match this topology's
/// own dfs_machine_order.
VerifyReport verify_collective_schedule(
    const topology::Topology& topo, const Schedule& schedule,
    const SparseNeighbors& neighbors = {});

/// Order-insensitive FNV-1a digest of normalized neighbor sets, for
/// cache keying. Zero-cost convention: empty input hashes to the FNV
/// offset basis, and non-sparse cache keys store 0 instead.
std::uint64_t sparse_pattern_hash(const SparseNeighbors& normalized);

/// Rewrites neighbor sets through a rank permutation: the set of
/// perm[r] becomes {perm[v] : v in neighbors[r]}, re-sorted. Used by
/// the service to key and compile sparse requests in canonical rank
/// space.
SparseNeighbors relabel_neighbors(const SparseNeighbors& neighbors,
                                  const std::vector<Rank>& perm);

}  // namespace aapc::core
