// Schedule data model: the output of the paper's scheduling algorithm.
//
// A Schedule partitions the AAPC pattern {u → v : u ≠ v} into *phases*
// (contention-free sets of messages, §3). Messages are identified by
// machine rank; the topology maps ranks back to tree nodes.
//
// Layout: one flat phase-major arena (`messages`) indexed by CSR-style
// offsets (`phase_begin`), in the style of the simnet arena rework. The
// old per-phase vector-of-vectors doubled memory and cost one heap
// allocation per phase — ~4M allocations at 4096 ranks, where the
// schedule holds |M|(|M|−1) ≈ 16.7M messages over ≈ 4.19M phases.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::core {

using topology::Rank;

/// One point-to-point transfer u → v between machine ranks.
struct Message {
  Rank src = -1;
  Rank dst = -1;

  friend bool operator==(const Message&, const Message&) = default;
  friend auto operator<=>(const Message&, const Message&) = default;
};

/// The collective operation a schedule realizes. The phase-scheduling
/// pipeline (decompose → assign / greedy → sync plan → lowering →
/// executor) is collective-agnostic; the kind names the message
/// multiset a schedule must cover and the bandwidth bound it is judged
/// against (core/collectives.hpp). Values are the netd wire encoding
/// (docs/FORMATS.md §4, v3 request frames) — append only.
enum class CollectiveKind : std::uint8_t {
  kAlltoall = 0,       // complete personalized exchange (the paper's AAPC)
  kAllgather = 1,      // every rank's block to every rank (DFS-ring pipeline)
  kReduceScatter = 2,  // allgather's dual: reverse DFS-ring pipeline
  kSparseAlltoall = 3, // personalized exchange over per-rank neighbor sets
};

/// Wire/metrics name of a kind ("alltoall", "allgather",
/// "reduce_scatter", "sparse_alltoall").
const char* collective_kind_name(CollectiveKind kind);

/// Inverse of collective_kind_name; throws InvalidArgument on an
/// unknown name.
CollectiveKind parse_collective_kind(std::string_view name);

/// Whether a raw byte (wire field, fuzzed input) names a valid kind.
bool collective_kind_valid(std::uint8_t raw);

/// Whether a scheduled message crosses the root (global) or stays inside
/// one root-subtree (local) — §4's distinction.
enum class MessageScope : std::uint8_t { kGlobal, kLocal };

/// A message with its placement metadata (phase and scope), the unit the
/// synchronization generator works over.
struct ScheduledMessage {
  Message message;
  std::int32_t phase = -1;
  MessageScope scope = MessageScope::kGlobal;

  friend bool operator==(const ScheduledMessage&,
                         const ScheduledMessage&) = default;
};

/// The messages of one phase: a view into the Schedule's arena.
using PhaseSpan = std::span<const ScheduledMessage>;

/// The phase-partitioned AAPC schedule.
struct Schedule {
  /// All scheduled messages in (phase, insertion) order — the arena.
  std::vector<ScheduledMessage> messages;

  /// CSR offsets: phase p occupies messages[phase_begin[p],
  /// phase_begin[p+1]). Size phase_count()+1; empty means no phases.
  std::vector<std::int64_t> phase_begin;

  /// The collective the message multiset realizes. Builders stamp it
  /// (build_aapc_schedule → kAlltoall, the collectives.hpp builders
  /// their own kind); relabel_schedule preserves it.
  CollectiveKind kind = CollectiveKind::kAlltoall;

  std::int32_t phase_count() const {
    return phase_begin.empty()
               ? 0
               : static_cast<std::int32_t>(phase_begin.size()) - 1;
  }
  std::int64_t message_count() const {
    return static_cast<std::int64_t>(messages.size());
  }

  /// The messages of phase p (phase-insertion order).
  PhaseSpan phase(std::int32_t p) const;
  std::int64_t phase_size(std::int32_t p) const;

  /// Indexes a staged (unsorted) message list into a Schedule covering
  /// phases [0, total_phases): a stable counting sort by phase, so ties
  /// keep their staged order. This is also the merge step of the
  /// hierarchical scheduler: per-subtree emissions concatenate in
  /// canonical order and sort into the shared phase arena.
  static Schedule from_staged(std::vector<ScheduledMessage> staged,
                              std::int64_t total_phases);

  /// Builds a Schedule from the legacy phase-list shape (tests, JSON io).
  static Schedule from_phase_lists(
      const std::vector<std::vector<Message>>& lists,
      MessageScope scope = MessageScope::kGlobal);

  /// The legacy phase-list shape, for tests that splice phases.
  std::vector<std::vector<Message>> phase_lists() const;

  /// Renders "phase p: a->b, c->d" lines for diagnostics and examples.
  std::string to_string(const topology::Topology& topo) const;
};

/// Accumulates (phase, message) pairs in emission order, then indexes
/// them into a Schedule. The shared builder for the §4 assignment, the
/// greedy scheduler, and benches.
class ScheduleBuilder {
 public:
  ScheduleBuilder() = default;

  void reserve(std::int64_t message_capacity) {
    staged_.reserve(static_cast<std::size_t>(message_capacity));
  }

  void add(std::int64_t phase, Rank src, Rank dst, MessageScope scope);

  std::int64_t staged_count() const {
    return static_cast<std::int64_t>(staged_.size());
  }

  /// Finalizes into a Schedule over phases [0, total_phases).
  Schedule build(std::int64_t total_phases) &&;

 private:
  std::vector<ScheduledMessage> staged_;
};

/// Rewrites every rank in `schedule` through `perm`: a message u → v
/// becomes perm[u] → perm[v], preserving phase structure, ordering, and
/// scope metadata. `perm` must be a permutation of [0, |ranks|) covering
/// every rank the schedule mentions. This is how the schedule-compilation
/// service maps a schedule compiled on a canonical topology back into the
/// caller's rank labeling (service/canonical.hpp): when `perm` is induced
/// by a tree isomorphism, relabeling preserves contention-freeness.
Schedule relabel_schedule(const Schedule& schedule,
                          const std::vector<Rank>& perm);

/// Inverse of a permutation: result[perm[i]] = i. Validates that `perm`
/// is a bijection on [0, perm.size()).
std::vector<Rank> invert_permutation(const std::vector<Rank>& perm);

}  // namespace aapc::core
