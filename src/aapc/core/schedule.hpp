// Schedule data model: the output of the paper's scheduling algorithm.
//
// A Schedule partitions the AAPC pattern {u → v : u ≠ v} into *phases*
// (contention-free sets of messages, §3). Messages are identified by
// machine rank; the topology maps ranks back to tree nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::core {

using topology::Rank;

/// One point-to-point transfer u → v between machine ranks.
struct Message {
  Rank src = -1;
  Rank dst = -1;

  friend bool operator==(const Message&, const Message&) = default;
  friend auto operator<=>(const Message&, const Message&) = default;
};

/// Whether a scheduled message crosses the root (global) or stays inside
/// one root-subtree (local) — §4's distinction.
enum class MessageScope : std::uint8_t { kGlobal, kLocal };

/// A message with its placement metadata (phase and scope), the unit the
/// synchronization generator works over.
struct ScheduledMessage {
  Message message;
  std::int32_t phase = -1;
  MessageScope scope = MessageScope::kGlobal;

  friend bool operator==(const ScheduledMessage&,
                         const ScheduledMessage&) = default;
};

/// The phase-partitioned AAPC schedule.
struct Schedule {
  /// phases[p] lists the messages carried out in phase p.
  std::vector<std::vector<Message>> phases;

  /// Flat view with scope/phase metadata, in (phase, insertion) order.
  std::vector<ScheduledMessage> messages;

  std::int32_t phase_count() const {
    return static_cast<std::int32_t>(phases.size());
  }
  std::int64_t message_count() const {
    return static_cast<std::int64_t>(messages.size());
  }

  /// Renders "phase p: a->b, c->d" lines for diagnostics and examples.
  std::string to_string(const topology::Topology& topo) const;
};

/// Rewrites every rank in `schedule` through `perm`: a message u → v
/// becomes perm[u] → perm[v], preserving phase structure, ordering, and
/// scope metadata. `perm` must be a permutation of [0, |ranks|) covering
/// every rank the schedule mentions. This is how the schedule-compilation
/// service maps a schedule compiled on a canonical topology back into the
/// caller's rank labeling (service/canonical.hpp): when `perm` is induced
/// by a tree isomorphism, relabeling preserves contention-freeness.
Schedule relabel_schedule(const Schedule& schedule,
                          const std::vector<Rank>& perm);

/// Inverse of a permutation: result[perm[i]] = i. Validates that `perm`
/// is a bijection on [0, perm.size()).
std::vector<Rank> invert_permutation(const std::vector<Rank>& perm);

}  // namespace aapc::core
