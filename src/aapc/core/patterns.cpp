#include "aapc/core/patterns.hpp"

#include <numeric>

#include "aapc/common/error.hpp"

namespace aapc::core {

std::vector<PatternEntry> broadcast_pattern(std::int32_t mi, std::int32_t mj,
                                            std::int32_t receiver_offset) {
  AAPC_REQUIRE(mi >= 1 && mj >= 1, "pattern sizes must be positive");
  std::vector<PatternEntry> out;
  out.reserve(static_cast<std::size_t>(mi) * mj);
  for (std::int32_t q = 0; q < mi * mj; ++q) {
    out.push_back(PatternEntry{
        q / mj,
        static_cast<std::int32_t>(positive_mod(q + receiver_offset, mj))});
  }
  return out;
}

std::int32_t rotate_sender_at(std::int32_t mi, std::int32_t mj,
                              std::int64_t q) {
  const std::int64_t block = std::lcm<std::int64_t>(mi, mj);
  return static_cast<std::int32_t>(positive_mod(q + q / block, mi));
}

std::vector<PatternEntry> rotate_pattern(std::int32_t mi, std::int32_t mj,
                                         std::int32_t receiver_offset) {
  AAPC_REQUIRE(mi >= 1 && mj >= 1, "pattern sizes must be positive");
  std::vector<PatternEntry> out;
  out.reserve(static_cast<std::size_t>(mi) * mj);
  for (std::int32_t q = 0; q < mi * mj; ++q) {
    out.push_back(PatternEntry{
        rotate_sender_at(mi, mj, q),
        static_cast<std::int32_t>(positive_mod(q + receiver_offset, mj))});
  }
  return out;
}

}  // namespace aapc::core
