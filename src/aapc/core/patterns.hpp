// The two inter-subtree realization patterns of §4.3.
//
// A group ti → tj owns |Mi| * |Mj| consecutive phases; a *pattern* maps
// each relative phase q to the (sender-index, receiver-index) pair
// (t_{i,s} → t_{j,r}) carried out at that phase, covering every pair
// exactly once.
//
//  * broadcast: sender t_{i,k} occupies |Mj| contiguous phases (Lemma 5);
//    receivers cycle t_{j,0}, t_{j,1}, ....
//  * rotate: each sender appears once per |Mi| aligned phases and each
//    receiver once per |Mj| aligned phases (Lemma 6); the sender base
//    sequence is rotated once at every multiple of lcm(|Mi|, |Mj|).
#pragma once

#include <cstdint>
#include <vector>

namespace aapc::core {

struct PatternEntry {
  std::int32_t sender = -1;    // index within ti
  std::int32_t receiver = -1;  // index within tj

  friend bool operator==(const PatternEntry&, const PatternEntry&) = default;
};

/// Broadcast pattern (§4.3): q -> (q / mj, (q + receiver_offset) mod mj).
/// `receiver_offset` rotates the receiver cycle so it can align with the
/// designated-receiver convention (Step 4 uses offset 0).
std::vector<PatternEntry> broadcast_pattern(std::int32_t mi, std::int32_t mj,
                                            std::int32_t receiver_offset = 0);

/// Rotate pattern (§4.3, Table 2): receivers follow the fixed cycle
/// (q + receiver_offset) mod mj; senders follow the base sequence
/// 0..mi-1 rotated once at each multiple of lcm(mi, mj):
///   sender(q) = (q + q / lcm(mi, mj)) mod mi.
/// Covers all mi*mj pairs exactly once for any receiver_offset.
std::vector<PatternEntry> rotate_pattern(std::int32_t mi, std::int32_t mj,
                                         std::int32_t receiver_offset = 0);

/// Sender index of the rotate pattern at relative phase q (no
/// materialization; used when groups are walked phase-by-phase).
std::int32_t rotate_sender_at(std::int32_t mi, std::int32_t mj,
                              std::int64_t q);

/// Mathematical modulus: result in [0, m) for any x.
constexpr std::int64_t positive_mod(std::int64_t x, std::int64_t m) {
  const std::int64_t r = x % m;
  return r < 0 ? r + m : r;
}

}  // namespace aapc::core
