// Top-level entry point of the paper's contribution: topology in,
// contention-free optimal AAPC schedule out.
#pragma once

#include "aapc/core/assign.hpp"
#include "aapc/core/decompose.hpp"
#include "aapc/core/hierarchical.hpp"
#include "aapc/core/schedule.hpp"

namespace aapc::core {

struct SchedulerOptions {
  AssignmentOptions assignment;

  /// Use the hierarchical assignment (per-subtree emission units merged
  /// across the root). Output is bit-identical to the flat path; the
  /// units can additionally run on `runner`'s threads.
  bool hierarchical = false;

  /// Executes hierarchical emission units; nullptr means run inline on
  /// the calling thread. The service installs its CompilerPool here.
  TaskRunner runner = nullptr;
};

/// Builds the contention-free AAPC schedule for `topo`:
///   |M| <= 1 : empty schedule;
///   |M| == 2 : one phase holding both directions (duplex links);
///   |M| >= 3 : §4 pipeline (decompose -> extended ring -> Figure 4).
/// The result always satisfies the paper's Theorem; callers wanting an
/// independent check run core::verify_schedule.
Schedule build_aapc_schedule(const topology::Topology& topo,
                             const SchedulerOptions& options = {});

}  // namespace aapc::core
