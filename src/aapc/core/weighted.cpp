#include "aapc/core/weighted.hpp"

#include <algorithm>
#include <numeric>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"

namespace aapc::core {

namespace {

void require_rates(const topology::Topology& topo, const LinkRates& link_rate) {
  AAPC_REQUIRE(static_cast<std::int32_t>(link_rate.size()) ==
                   topo.link_count(),
               "link_rate covers " << link_rate.size()
                                   << " links but the topology has "
                                   << topo.link_count());
  for (std::size_t l = 0; l < link_rate.size(); ++l) {
    AAPC_REQUIRE(link_rate[l] > 0,
                 "link " << l << " has rate " << link_rate[l]
                         << "; a down link cannot carry a schedule — "
                            "re-elect the tree first");
  }
}

double path_slowness(const std::vector<topology::EdgeId>& path,
                     const LinkRates& link_rate) {
  double min_rate = 1.0;
  for (const topology::EdgeId e : path) {
    min_rate = std::min(min_rate,
                        link_rate[static_cast<std::size_t>(e) / 2]);
  }
  return 1.0 / min_rate;
}

}  // namespace

bool uniform_rates(const LinkRates& link_rate) {
  for (const double rate : link_rate) {
    if (rate != link_rate.front()) return false;
  }
  return true;
}

double weighted_pattern_load(const topology::Topology& topo,
                             const Pattern& pattern,
                             const LinkRates& link_rate) {
  require_rates(topo, link_rate);
  std::vector<std::int64_t> edge_load(
      static_cast<std::size_t>(topo.directed_edge_count()), 0);
  for (const Message& m : pattern) {
    for (const topology::EdgeId e :
         topo.path(topo.machine_node(m.src), topo.machine_node(m.dst))) {
      edge_load[static_cast<std::size_t>(e)] += 1;
    }
  }
  double load = 0;
  for (std::size_t e = 0; e < edge_load.size(); ++e) {
    load = std::max(load, static_cast<double>(edge_load[e]) /
                              link_rate[e / 2]);
  }
  return load;
}

double message_slowness(const topology::Topology& topo, const Message& message,
                        const LinkRates& link_rate) {
  require_rates(topo, link_rate);
  return path_slowness(topo.path(topo.machine_node(message.src),
                                 topo.machine_node(message.dst)),
                       link_rate);
}

double weighted_schedule_cost(const topology::Topology& topo,
                              const Schedule& schedule,
                              const LinkRates& link_rate) {
  require_rates(topo, link_rate);
  double cost = 0;
  std::vector<topology::EdgeId> path;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    double phase_cost = 0;
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      topo.path_into(topo.machine_node(sm.message.src),
                     topo.machine_node(sm.message.dst), path);
      phase_cost = std::max(phase_cost, path_slowness(path, link_rate));
    }
    cost += phase_cost;
  }
  return cost;
}

Schedule weighted_greedy_schedule(const topology::Topology& topo,
                                  const Pattern& pattern,
                                  const LinkRates& link_rate) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  require_rates(topo, link_rate);
  const std::int32_t machines = topo.machine_count();

  std::vector<std::vector<topology::EdgeId>> paths;
  std::vector<double> slowness(pattern.size(), 1.0);
  paths.reserve(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const Message& m = pattern[i];
    AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                     m.dst < machines,
                 "message rank out of range");
    AAPC_REQUIRE(m.src != m.dst, "self message " << m.src << "->" << m.dst);
    paths.push_back(
        topo.path(topo.machine_node(m.src), topo.machine_node(m.dst)));
    slowness[i] = path_slowness(paths.back(), link_rate);
  }

  // Slowest first (longest path breaks ties): every phase is opened by
  // the slowest message it will ever hold, so later placements are free
  // and the schedule's cost telescopes to the openers' slownesses.
  std::vector<std::size_t> order(pattern.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (slowness[a] != slowness[b]) {
                       return slowness[a] > slowness[b];
                     }
                     return paths[a].size() > paths[b].size();
                   });

  std::vector<std::vector<char>> phase_edges;  // [phase][directed edge]
  std::vector<std::int32_t> assigned_phase(pattern.size(), -1);
  for (const std::size_t index : order) {
    const auto& path = paths[index];
    std::size_t phase = 0;
    for (;; ++phase) {
      if (phase == phase_edges.size()) {
        phase_edges.emplace_back(
            static_cast<std::size_t>(topo.directed_edge_count()), 0);
        break;
      }
      bool free = true;
      for (const topology::EdgeId e : path) {
        if (phase_edges[phase][static_cast<std::size_t>(e)]) {
          free = false;
          break;
        }
      }
      if (free) break;
    }
    for (const topology::EdgeId e : path) {
      phase_edges[phase][static_cast<std::size_t>(e)] = 1;
    }
    assigned_phase[index] = static_cast<std::int32_t>(phase);
  }

  ScheduleBuilder builder;
  builder.reserve(static_cast<std::int64_t>(pattern.size()));
  for (std::size_t index = 0; index < pattern.size(); ++index) {
    builder.add(assigned_phase[index], pattern[index].src, pattern[index].dst,
                MessageScope::kGlobal);
  }
  return std::move(builder)
      .build(static_cast<std::int64_t>(phase_edges.size()));
}

Schedule build_aapc_schedule_weighted(const topology::Topology& topo,
                                      const LinkRates& link_rate) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  require_rates(topo, link_rate);
  if (uniform_rates(link_rate)) return build_aapc_schedule(topo);

  Schedule optimal = build_aapc_schedule(topo);
  if (topo.machine_count() <= 1) return optimal;
  Schedule weighted =
      weighted_greedy_schedule(topo, aapc_pattern(topo), link_rate);
  // Strictly-less comparison: ties keep the paper's schedule, whose
  // phase count is optimal (fewer synchronization rounds at equal cost).
  const double optimal_cost =
      weighted_schedule_cost(topo, optimal, link_rate);
  const double weighted_cost =
      weighted_schedule_cost(topo, weighted, link_rate);
  return weighted_cost < optimal_cost ? std::move(weighted)
                                      : std::move(optimal);
}

}  // namespace aapc::core
