// Schedule serialization: a small JSON representation so generated
// schedules can be inspected, stored, diffed, or consumed by external
// tooling (and so the routine generator can be split into offline
// schedule generation + online execution).
//
// Format:
//   {
//     "machines": 6,
//     "phases": [
//       [[0,4],[3,5],[1,0]],      // phase 0: messages [src,dst]
//       ...
//     ]
//   }
//
// Message scopes are reconstructed on load when a decomposition is
// available; the flat `messages` list is rebuilt in phase order with
// scope kGlobal (scope is advisory metadata only — verification and
// lowering derive everything else from the topology).
#pragma once

#include <string>
#include <string_view>

#include "aapc/core/schedule.hpp"

namespace aapc::core {

/// Serialize to the JSON format above (stable field order, no
/// whitespace dependence for parsing).
std::string schedule_to_json(const Schedule& schedule,
                             std::int32_t machine_count);

/// Parse a schedule from JSON; throws InvalidArgument on malformed
/// input or ranks outside [0, machines). The embedded machine count
/// must match `expected_machines` when that is >= 0.
Schedule schedule_from_json(std::string_view json,
                            std::int32_t expected_machines = -1);

}  // namespace aapc::core
