// Root identification and subtree decomposition (§4.1 of the paper).
//
// The *root* is a switch that (1) touches a bottleneck link and (2) has
// every machine-bearing subtree holding at most |M|/2 machines (Lemma 1).
// The scheduler then views the network two-level (Figure 2): a root with
// k machine-bearing subtrees t0..t(k-1), |M0| >= ... >= |M(k-1)|.
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::core {

using topology::NodeId;
using topology::Rank;
using topology::Topology;

/// Two-level decomposition of the tree around the scheduling root.
struct Decomposition {
  NodeId root = topology::kInvalidNode;

  /// Machine ranks per subtree, sorted descending by subtree size
  /// (|M0| >= |M1| >= ...; ties broken by smallest contained rank so the
  /// decomposition is deterministic). Within a subtree, ranks are in
  /// ascending order: subtrees[i][x] is the paper's t_{i,x}.
  std::vector<std::vector<Rank>> subtrees;

  /// subtree_of[r] / index_in_subtree[r]: position of rank r, i.e.
  /// r == subtrees[subtree_of[r]][index_in_subtree[r]].
  std::vector<std::int32_t> subtree_of;
  std::vector<std::int32_t> index_in_subtree;

  std::int32_t subtree_count() const {
    return static_cast<std::int32_t>(subtrees.size());
  }
  std::int32_t machine_count() const {
    return static_cast<std::int32_t>(subtree_of.size());
  }
  std::int32_t subtree_size(std::int32_t i) const {
    return static_cast<std::int32_t>(subtrees[i].size());
  }

  /// |M0| * (|M| - |M0|): the phase count of the optimal schedule, equal
  /// to the AAPC load of the topology (§4).
  std::int64_t total_phases() const;
};

/// Runs the §4.1 procedure: pick a bottleneck link, walk toward the
/// machine-heavy side until a node with more than one machine-bearing
/// branch is found. Requires a finalized topology with >= 3 machines.
/// Postconditions (checked): the root is adjacent to a bottleneck link
/// and every subtree has <= |M|/2 machines.
///
/// When the bottleneck splits the machines evenly, either endpoint is a
/// valid root (the paper's "assume |Mu| >= |Mv|" leaves the tie open);
/// this implementation breaks the tie deterministically. Use
/// decompose_at to pin a specific root.
Decomposition decompose(const Topology& topo);

/// Builds the decomposition around a caller-chosen root. Throws
/// InvalidArgument unless the root yields an optimal schedule, i.e.
/// every machine-bearing subtree has <= |M|/2 machines and
/// |M0| * (|M| - |M0|) equals the AAPC load (the §4.1 conditions).
Decomposition decompose_at(const Topology& topo, NodeId root);

}  // namespace aapc::core
