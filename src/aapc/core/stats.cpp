#include "aapc/core/stats.hpp"

#include <algorithm>
#include <sstream>

#include "aapc/common/error.hpp"
#include "aapc/common/strings.hpp"

namespace aapc::core {

std::string ScheduleStats::to_string() const {
  std::ostringstream os;
  os << "phases: " << phase_count << ", messages: " << message_count
     << "\nmessages/phase: avg " << format_double(avg_messages_per_phase, 2)
     << ", min " << min_messages_per_phase << ", max "
     << max_messages_per_phase
     << "\noccupancy: send " << format_double(100 * send_occupancy, 1)
     << "%, receive " << format_double(100 * receive_occupancy, 1) << "%"
     << "\nbottleneck-link phase utilization: "
     << format_double(100 * bottleneck_phase_utilization, 1) << "%\n";
  return os.str();
}

ScheduleStats compute_schedule_stats(const topology::Topology& topo,
                                     const Schedule& schedule) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  ScheduleStats stats;
  stats.phase_count = schedule.phase_count();
  if (stats.phase_count == 0) return stats;

  const topology::LinkId bottleneck =
      topo.machine_count() >= 2 ? topo.bottleneck_link() : -1;
  const auto [ba, bb] =
      bottleneck >= 0 ? topo.link_endpoints(bottleneck)
                      : std::pair<topology::NodeId, topology::NodeId>{-1, -1};

  std::int64_t sends = 0;
  std::int64_t receives = 0;
  std::int64_t bottleneck_busy_directions = 0;
  stats.min_messages_per_phase =
      static_cast<std::int32_t>(schedule.phase_size(0));
  std::vector<topology::EdgeId> path;
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    const auto count = static_cast<std::int32_t>(schedule.phase_size(p));
    stats.message_count += count;
    stats.min_messages_per_phase =
        std::min(stats.min_messages_per_phase, count);
    stats.max_messages_per_phase =
        std::max(stats.max_messages_per_phase, count);
    bool forward = false;
    bool backward = false;
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      const Message& m = sm.message;
      ++sends;
      ++receives;
      if (bottleneck >= 0) {
        topo.path_into(topo.machine_node(m.src), topo.machine_node(m.dst),
                       path);
        for (const topology::EdgeId e : path) {
          if (topo.edge_link(e) == bottleneck) {
            (topo.edge_source(e) == ba ? forward : backward) = true;
          }
        }
      }
    }
    bottleneck_busy_directions += (forward ? 1 : 0) + (backward ? 1 : 0);
  }
  stats.avg_messages_per_phase =
      static_cast<double>(stats.message_count) / stats.phase_count;
  const double slots =
      static_cast<double>(topo.machine_count()) * stats.phase_count;
  stats.send_occupancy = static_cast<double>(sends) / slots;
  stats.receive_occupancy = static_cast<double>(receives) / slots;
  stats.bottleneck_phase_utilization =
      bottleneck >= 0 ? static_cast<double>(bottleneck_busy_directions) /
                            (2.0 * stats.phase_count)
                      : 0.0;
  return stats;
}

}  // namespace aapc::core
