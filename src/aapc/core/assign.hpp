// Global and local message assignment (§4.3, Figure 4).
//
// Input: a Decomposition (root + ordered subtrees) and the GlobalSchedule
// phase spans. Output: the complete per-phase message placement covering
// all |M| * (|M| - 1) AAPC messages in |M0| * (|M| - |M0|) phases with no
// intra-phase contention (the paper's Theorem).
//
// Step map (Figure 4):
//   1. t0 → tj   rotate pattern, receivers aligned to the designated-
//                receiver convention t_{j,(p-P) mod |Mj|}.
//   2. ti → t0   receivers follow the Table-3 round mapping against the
//                t0 sender sequence; senders broadcast in rank order.
//   3. locals in t0 embedded in the first |M0| * (|M0| - 1) phases.
//   4. ti → tj (i > j >= 1)  broadcast pattern (receiver-aligned).
//   5. locals in ti embedded in the phases of ti → t(i-1).
//   6. ti → tj (i < j, i != 0)  broadcast or rotate (free choice).
#pragma once

#include "aapc/core/decompose.hpp"
#include "aapc/core/schedule.hpp"

namespace aapc::core {

struct AssignmentOptions {
  /// Pattern for Step 6 groups; the paper allows either. Broadcast is
  /// the default; kRotate exists for the pattern ablation benchmark.
  enum class Step6Pattern { kBroadcast, kRotate };
  Step6Pattern step6 = Step6Pattern::kBroadcast;
};

/// Runs Figure 4 over a decomposition. All construction-time invariants
/// (span tiling, receiver alignment, local coverage) are AAPC_CHECKed;
/// use core::verify_schedule for the independent end-to-end check.
Schedule assign_messages(const Decomposition& dec,
                         const AssignmentOptions& options = {});

}  // namespace aapc::core
