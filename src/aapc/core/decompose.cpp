#include "aapc/core/decompose.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::core {

namespace {

/// Machine ranks in the component containing `start` after deleting
/// `blocked` from the tree; ascending rank order. Trees need no visited
/// set — tracking the arrival edge suffices — so collecting every
/// branch of a node is O(component) total instead of O(V) per branch
/// (the old per-branch `seen` arrays made a 4096-machine star
/// quadratic: one |V|-sized allocation and fill per branch).
std::vector<Rank> component_machines(const Topology& topo, NodeId start,
                                     NodeId blocked) {
  std::vector<Rank> machines;
  machines.reserve(
      static_cast<std::size_t>(topo.machines_beyond(blocked, start)));
  std::vector<std::pair<NodeId, NodeId>> stack{{start, blocked}};
  while (!stack.empty()) {
    const auto [u, from] = stack.back();
    stack.pop_back();
    if (topo.is_machine(u)) machines.push_back(topo.rank_of(u));
    for (const NodeId w : topo.neighbors(u)) {
      if (w != from) stack.emplace_back(w, u);
    }
  }
  std::sort(machines.begin(), machines.end());
  return machines;
}

}  // namespace

std::int64_t Decomposition::total_phases() const {
  const std::int64_t m0 = subtree_size(0);
  return m0 * (machine_count() - m0);
}

Decomposition decompose(const Topology& topo) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(topo.machine_count() >= 3,
               "decompose requires |M| >= 3 (AAPC is trivial below that)");

  // §4.1: start from any bottleneck link, orient toward the side with
  // more machines.
  const topology::LinkId bottleneck = topo.bottleneck_link();
  auto [a, b] = topo.link_endpoints(bottleneck);
  if (topo.machines_on_side(bottleneck, a) <
      topo.machines_on_side(bottleneck, b)) {
    std::swap(a, b);
  }
  NodeId u = a;  // heavy side
  NodeId v = b;

  while (true) {
    AAPC_CHECK_MSG(!topo.is_machine(u),
                   "root search reached machine " << topo.name(u)
                                                  << "; |M| < 3?");
    // Branches of u inside Gu (everything except the v side) that
    // contain at least one machine.
    NodeId sole_branch = topology::kInvalidNode;
    std::int32_t machine_branches = 0;
    for (const NodeId w : topo.neighbors(u)) {
      if (w == v) continue;
      // O(1) per branch via the rooted subtree counts; a BFS here made
      // the root walk quadratic on deep or wide trees.
      if (topo.machines_beyond(u, w) > 0) {
        ++machine_branches;
        sole_branch = w;
      }
    }
    AAPC_CHECK_MSG(machine_branches >= 1,
                   "heavy side of bottleneck has no machines");
    if (machine_branches > 1) {
      break;  // u is the root.
    }
    // Exactly one machine-bearing branch: (sole_branch, u) is also a
    // bottleneck link; repeat from there (§4.1).
    v = u;
    u = sole_branch;
  }

  return decompose_at(topo, u);
}

Decomposition decompose_at(const Topology& topo, NodeId root) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(topo.machine_count() >= 3, "decompose requires |M| >= 3");
  AAPC_REQUIRE(!topo.is_machine(root),
               "root " << topo.name(root) << " must be a switch");

  Decomposition out;
  out.root = root;

  for (const NodeId w : topo.neighbors(root)) {
    std::vector<Rank> machines = component_machines(topo, w, root);
    if (!machines.empty()) {
      out.subtrees.push_back(std::move(machines));
    }
  }
  std::sort(out.subtrees.begin(), out.subtrees.end(),
            [](const std::vector<Rank>& lhs, const std::vector<Rank>& rhs) {
              if (lhs.size() != rhs.size()) return lhs.size() > rhs.size();
              return lhs.front() < rhs.front();
            });

  out.subtree_of.assign(topo.machine_count(), -1);
  out.index_in_subtree.assign(topo.machine_count(), -1);
  for (std::size_t i = 0; i < out.subtrees.size(); ++i) {
    for (std::size_t x = 0; x < out.subtrees[i].size(); ++x) {
      const Rank r = out.subtrees[i][x];
      out.subtree_of[r] = static_cast<std::int32_t>(i);
      out.index_in_subtree[r] = static_cast<std::int32_t>(x);
    }
  }

  std::int32_t covered = 0;
  for (const auto& subtree : out.subtrees) {
    covered += static_cast<std::int32_t>(subtree.size());
  }
  AAPC_CHECK(covered == topo.machine_count());
  AAPC_REQUIRE(out.subtree_count() >= 2,
               "root " << topo.name(root)
                       << " has fewer than two machine-bearing subtrees");
  // Optimality condition: the schedule will have |M0| * (|M| - |M0|)
  // phases, which can never be below the AAPC load but falls short of it
  // for a badly chosen root. (Lemma 1's |M0| <= |M|/2 is sufficient for
  // equality but not necessary: any root whose largest subtree realizes
  // the bottleneck load also works, and decompose_at accepts those.)
  AAPC_REQUIRE(out.total_phases() == topo.aapc_load(),
               "root " << topo.name(root) << " yields "
                       << out.total_phases() << " phases but the AAPC load is "
                       << topo.aapc_load());
  return out;
}

}  // namespace aapc::core
