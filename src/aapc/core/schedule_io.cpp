#include "aapc/core/schedule_io.hpp"

#include <cctype>
#include <sstream>

#include "aapc/common/error.hpp"

namespace aapc::core {

std::string schedule_to_json(const Schedule& schedule,
                             std::int32_t machine_count) {
  std::ostringstream os;
  os << "{\"machines\":" << machine_count;
  // Alltoall is implicit so pre-kind schedule JSON stays byte-identical
  // (determinism goldens, netd loadgen byte-compare).
  if (schedule.kind != CollectiveKind::kAlltoall) {
    os << ",\"kind\":\"" << collective_kind_name(schedule.kind) << '"';
  }
  os << ",\"phases\":[";
  for (std::int32_t p = 0; p < schedule.phase_count(); ++p) {
    if (p > 0) os << ',';
    os << '[';
    bool first = true;
    for (const ScheduledMessage& sm : schedule.phase(p)) {
      if (!first) os << ',';
      first = false;
      os << '[' << sm.message.src << ',' << sm.message.dst << ']';
    }
    os << ']';
  }
  os << "]}";
  return os.str();
}

namespace {

/// Minimal recursive-descent reader for exactly the schedule grammar
/// (objects with known keys, arrays, integers). Not a general JSON
/// parser by design: unknown keys are rejected so format drift fails
/// loudly.
class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_space();
    AAPC_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                 "schedule JSON: expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume(char c) {
    skip_space();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string key() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out.push_back(text_[pos_++]);
    }
    expect('"');
    expect(':');
    return out;
  }

  std::string string_value() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out.push_back(text_[pos_++]);
    }
    expect('"');
    return out;
  }

  std::int64_t integer() {
    skip_space();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    AAPC_REQUIRE(pos_ < text_.size() &&
                     std::isdigit(static_cast<unsigned char>(text_[pos_])),
                 "schedule JSON: expected integer at offset " << pos_);
    std::int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_++] - '0');
    }
    return negative ? -value : value;
  }

  void finish() {
    skip_space();
    AAPC_REQUIRE(pos_ == text_.size(),
                 "schedule JSON: trailing content at offset " << pos_);
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Schedule schedule_from_json(std::string_view json,
                            std::int32_t expected_machines) {
  Reader reader(json);
  reader.expect('{');
  std::int64_t machines = -1;
  CollectiveKind kind = CollectiveKind::kAlltoall;
  std::vector<std::vector<Message>> phases;
  bool saw_phases = false;
  do {
    const std::string field = reader.key();
    if (field == "machines") {
      machines = reader.integer();
      AAPC_REQUIRE(machines >= 0, "schedule JSON: negative machine count");
    } else if (field == "kind") {
      kind = parse_collective_kind(reader.string_value());
    } else if (field == "phases") {
      saw_phases = true;
      reader.expect('[');
      if (!reader.consume(']')) {
        do {
          reader.expect('[');
          std::vector<Message> phase;
          if (!reader.consume(']')) {
            do {
              reader.expect('[');
              const std::int64_t src = reader.integer();
              reader.expect(',');
              const std::int64_t dst = reader.integer();
              reader.expect(']');
              phase.push_back(Message{static_cast<Rank>(src),
                                      static_cast<Rank>(dst)});
            } while (reader.consume(','));
            reader.expect(']');
          }
          phases.push_back(std::move(phase));
        } while (reader.consume(','));
        reader.expect(']');
      }
    } else {
      throw InvalidArgument("schedule JSON: unknown field '" + field + "'");
    }
  } while (reader.consume(','));
  reader.expect('}');
  reader.finish();

  AAPC_REQUIRE(machines >= 0, "schedule JSON: missing 'machines'");
  AAPC_REQUIRE(saw_phases, "schedule JSON: missing 'phases'");
  AAPC_REQUIRE(expected_machines < 0 || machines == expected_machines,
               "schedule JSON: machine count " << machines << " != expected "
                                               << expected_machines);
  for (std::size_t p = 0; p < phases.size(); ++p) {
    for (const Message& m : phases[p]) {
      AAPC_REQUIRE(m.src >= 0 && m.src < machines && m.dst >= 0 &&
                       m.dst < machines,
                   "schedule JSON: rank out of range in phase " << p);
    }
  }
  Schedule schedule = Schedule::from_phase_lists(phases);
  schedule.kind = kind;
  return schedule;
}

}  // namespace aapc::core
