#include "aapc/core/collectives.hpp"

#include <algorithm>
#include <utility>

#include "aapc/common/error.hpp"
#include "aapc/core/scheduler.hpp"

namespace aapc::core {

using topology::NodeId;
using topology::kInvalidNode;

std::vector<Rank> dfs_machine_order(const topology::Topology& topo) {
  NodeId root = kInvalidNode;
  for (NodeId node = 0; node < topo.node_count(); ++node) {
    if (topo.parent(node) == kInvalidNode) {
      root = node;
      break;
    }
  }
  AAPC_REQUIRE(root != kInvalidNode || topo.node_count() == 0,
               "topology has no root");
  std::vector<Rank> order;
  order.reserve(static_cast<std::size_t>(topo.machine_count()));
  if (root == kInvalidNode) return order;
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    if (topo.is_machine(node)) order.push_back(topo.rank_of(node));
    const auto& adj = topo.neighbors(node);
    // Push children in reverse so they pop in stored neighbor order.
    for (auto it = adj.rbegin(); it != adj.rend(); ++it) {
      if (*it != topo.parent(node)) stack.push_back(*it);
    }
  }
  AAPC_CHECK(static_cast<std::int32_t>(order.size()) == topo.machine_count());
  return order;
}

namespace {

Schedule build_ring_pipeline(const topology::Topology& topo, bool forward,
                             CollectiveKind kind) {
  const std::vector<Rank> order = dfs_machine_order(topo);
  const auto n = static_cast<std::int64_t>(order.size());
  if (n <= 1) {
    Schedule empty;
    empty.kind = kind;
    return empty;
  }
  const std::int64_t rounds = n - 1;
  ScheduleBuilder builder;
  builder.reserve(rounds * n);
  for (std::int64_t round = 0; round < rounds; ++round) {
    for (std::int64_t p = 0; p < n; ++p) {
      const std::int64_t q = forward ? (p + 1) % n : (p + n - 1) % n;
      builder.add(round, order[static_cast<std::size_t>(p)],
                  order[static_cast<std::size_t>(q)], MessageScope::kGlobal);
    }
  }
  Schedule schedule = std::move(builder).build(rounds);
  schedule.kind = kind;
  return schedule;
}

}  // namespace

Schedule build_allgather_schedule(const topology::Topology& topo) {
  return build_ring_pipeline(topo, /*forward=*/true,
                             CollectiveKind::kAllgather);
}

Schedule build_reduce_scatter_schedule(const topology::Topology& topo) {
  return build_ring_pipeline(topo, /*forward=*/false,
                             CollectiveKind::kReduceScatter);
}

SparseNeighbors normalize_neighbors(std::int32_t machine_count,
                                    const SparseNeighbors& neighbors) {
  AAPC_REQUIRE(static_cast<std::int64_t>(neighbors.size()) == machine_count,
               "sparse neighbor sets cover " << neighbors.size()
                                             << " ranks, topology has "
                                             << machine_count);
  SparseNeighbors normalized(neighbors.size());
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    std::vector<Rank> set = neighbors[r];
    for (const Rank v : set) {
      AAPC_REQUIRE(v >= 0 && v < machine_count,
                   "sparse neighbor " << v << " of rank " << r
                                      << " out of range [0," << machine_count
                                      << ")");
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    // A rank never sends to itself; a self-entry is a no-op, not an
    // error (halo generators commonly include the center cell).
    set.erase(std::remove(set.begin(), set.end(), static_cast<Rank>(r)),
              set.end());
    normalized[r] = std::move(set);
  }
  return normalized;
}

bool neighbors_fully_dense(std::int32_t machine_count,
                           const SparseNeighbors& normalized) {
  if (static_cast<std::int64_t>(normalized.size()) != machine_count) {
    return false;
  }
  for (const auto& set : normalized) {
    if (static_cast<std::int64_t>(set.size()) != machine_count - 1) {
      return false;
    }
  }
  return true;
}

Schedule build_sparse_alltoall_schedule(const topology::Topology& topo,
                                        const SparseNeighbors& neighbors) {
  const SparseNeighbors normalized =
      normalize_neighbors(topo.machine_count(), neighbors);
  Schedule schedule;
  if (neighbors_fully_dense(topo.machine_count(), normalized)) {
    // Dense degenerates to the paper's optimal AAPC schedule —
    // bit-identical phase structure, only the kind stamp differs.
    schedule = build_aapc_schedule(topo);
  } else {
    Pattern pattern;
    for (std::size_t r = 0; r < normalized.size(); ++r) {
      for (const Rank v : normalized[r]) {
        pattern.push_back(Message{static_cast<Rank>(r), v});
      }
    }
    schedule = greedy_schedule(topo, pattern);
  }
  schedule.kind = CollectiveKind::kSparseAlltoall;
  return schedule;
}

Pattern collective_pattern(const topology::Topology& topo,
                           CollectiveKind kind,
                           const SparseNeighbors& neighbors) {
  switch (kind) {
    case CollectiveKind::kAlltoall:
      return aapc_pattern(topo);
    case CollectiveKind::kAllgather:
    case CollectiveKind::kReduceScatter: {
      const std::vector<Rank> order = dfs_machine_order(topo);
      const auto n = static_cast<std::int64_t>(order.size());
      Pattern pattern;
      if (n <= 1) return pattern;
      const bool forward = kind == CollectiveKind::kAllgather;
      pattern.reserve(static_cast<std::size_t>((n - 1) * n));
      for (std::int64_t round = 0; round < n - 1; ++round) {
        for (std::int64_t p = 0; p < n; ++p) {
          const std::int64_t q = forward ? (p + 1) % n : (p + n - 1) % n;
          pattern.push_back(Message{order[static_cast<std::size_t>(p)],
                                    order[static_cast<std::size_t>(q)]});
        }
      }
      return pattern;
    }
    case CollectiveKind::kSparseAlltoall: {
      const SparseNeighbors normalized =
          normalize_neighbors(topo.machine_count(), neighbors);
      Pattern pattern;
      for (std::size_t r = 0; r < normalized.size(); ++r) {
        for (const Rank v : normalized[r]) {
          pattern.push_back(Message{static_cast<Rank>(r), v});
        }
      }
      return pattern;
    }
  }
  throw InvalidArgument("invalid collective kind");
}

std::int64_t collective_phase_lower_bound(const topology::Topology& topo,
                                          CollectiveKind kind,
                                          const SparseNeighbors& neighbors) {
  return pattern_load(topo, collective_pattern(topo, kind, neighbors));
}

namespace {

/// Ring-pipeline verification that accepts ANY single ring over the
/// machines, not just the one dfs_machine_order picks: the service
/// rewrites cached canonical artifacts through a tree isomorphism, and
/// the image of the canonical DFS ring is a different — equally valid —
/// leaf ring of the caller's topology. Structure first (every machine
/// sends n-1 times to one fixed successor; successors form a single
/// Hamiltonian cycle), then contention-freeness and coverage against
/// the ring the schedule itself implies.
VerifyReport verify_ring_pipeline(const topology::Topology& topo,
                                  const Schedule& schedule) {
  VerifyReport report;
  const auto n = static_cast<std::int64_t>(topo.machine_count());
  const auto fail = [&](std::string msg) {
    report.ok = false;
    report.violations.push_back(std::move(msg));
  };
  if (n <= 1) {
    if (schedule.message_count() != 0) {
      fail("ring pipeline on " + std::to_string(n) +
           " machine(s) must be empty, has " +
           std::to_string(schedule.message_count()) + " message(s)");
    }
    return report;
  }
  std::vector<Rank> succ(static_cast<std::size_t>(n), -1);
  std::vector<std::int64_t> sends(static_cast<std::size_t>(n), 0);
  for (const ScheduledMessage& sm : schedule.messages) {
    const Message& m = sm.message;
    AAPC_REQUIRE(m.src >= 0 && m.src < n && m.dst >= 0 && m.dst < n,
                 "message " << m.src << "->" << m.dst << " outside [0," << n
                            << ")");
    auto& s = succ[static_cast<std::size_t>(m.src)];
    if (s == -1) {
      s = m.dst;
    } else if (s != m.dst) {
      fail("machine " + std::to_string(m.src) +
           " sends to multiple partners (" + std::to_string(s) + " and " +
           std::to_string(m.dst) + "); a ring pipeline has one successor");
      return report;
    }
    ++sends[static_cast<std::size_t>(m.src)];
  }
  for (Rank r = 0; r < n; ++r) {
    if (sends[static_cast<std::size_t>(r)] != n - 1) {
      fail("machine " + std::to_string(r) + " sends " +
           std::to_string(sends[static_cast<std::size_t>(r)]) +
           " message(s), ring pipeline wants " + std::to_string(n - 1));
    }
  }
  if (!report.ok) return report;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  Rank cur = 0;
  std::int64_t steps = 0;
  while (!seen[static_cast<std::size_t>(cur)]) {
    seen[static_cast<std::size_t>(cur)] = true;
    cur = succ[static_cast<std::size_t>(cur)];
    ++steps;
  }
  if (steps != n || cur != 0) {
    fail("ring successors do not form a single cycle over all machines");
    return report;
  }
  // The bandwidth-optimal bound: one round per non-local block.
  if (schedule.phase_count() != n - 1) {
    fail("ring pipeline has " + std::to_string(schedule.phase_count()) +
         " phase(s), the bandwidth-optimal bound is " +
         std::to_string(n - 1));
  }
  // Coverage and contention-freeness against the schedule's own ring.
  Pattern expected;
  expected.reserve(static_cast<std::size_t>((n - 1) * n));
  for (std::int64_t round = 0; round < n - 1; ++round) {
    for (Rank r = 0; r < n; ++r) {
      expected.push_back(Message{r, succ[static_cast<std::size_t>(r)]});
    }
  }
  VerifyOptions options;
  options.require_optimal_phase_count = false;
  VerifyReport inner = verify_schedule_pattern(topo, schedule, expected,
                                               options);
  report.ok = report.ok && inner.ok;
  report.max_edge_multiplicity = inner.max_edge_multiplicity;
  report.violations.insert(report.violations.end(),
                           inner.violations.begin(), inner.violations.end());
  return report;
}

}  // namespace

VerifyReport verify_collective_schedule(const topology::Topology& topo,
                                        const Schedule& schedule,
                                        const SparseNeighbors& neighbors) {
  if (schedule.kind == CollectiveKind::kAllgather ||
      schedule.kind == CollectiveKind::kReduceScatter) {
    return verify_ring_pipeline(topo, schedule);
  }
  VerifyOptions options;
  options.require_optimal_phase_count =
      schedule.kind != CollectiveKind::kSparseAlltoall;
  if (schedule.kind == CollectiveKind::kAlltoall) {
    return verify_schedule(topo, schedule, options);
  }
  return verify_schedule_pattern(
      topo, schedule, collective_pattern(topo, schedule.kind, neighbors),
      options);
}

std::uint64_t sparse_pattern_hash(const SparseNeighbors& normalized) {
  constexpr std::uint64_t kOffset = 14695981039346656037ULL;
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t hash = kOffset;
  auto mix = [&](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= kPrime;
    }
  };
  for (const auto& set : normalized) {
    mix(static_cast<std::uint64_t>(set.size()));
    for (const Rank v : set) mix(static_cast<std::uint64_t>(v));
  }
  return hash;
}

SparseNeighbors relabel_neighbors(const SparseNeighbors& neighbors,
                                  const std::vector<Rank>& perm) {
  AAPC_REQUIRE(neighbors.size() == perm.size(),
               "neighbor sets cover " << neighbors.size()
                                      << " ranks, permutation covers "
                                      << perm.size());
  invert_permutation(perm);  // validates bijectivity
  SparseNeighbors relabeled(neighbors.size());
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    std::vector<Rank> set;
    set.reserve(neighbors[r].size());
    for (const Rank v : neighbors[r]) {
      AAPC_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < perm.size(),
                   "neighbor " << v << " outside permutation domain");
      set.push_back(perm[static_cast<std::size_t>(v)]);
    }
    std::sort(set.begin(), set.end());
    relabeled[perm[r]] = std::move(set);
  }
  return relabeled;
}

}  // namespace aapc::core
