// Independent schedule verifier.
//
// Checks the three §4 conditions directly against the topology, using
// nothing from the construction code (paths are recomputed from the
// tree):
//   (1) every AAPC message appears exactly once across the phases;
//   (2) no two messages within a phase share a directed edge;
//   (3) the number of phases equals the AAPC load of the topology
//       (optimality — optional, since non-optimal schedules from the
//       baselines can also be checked for (1) and (2)).
#pragma once

#include <string>
#include <vector>

#include "aapc/core/schedule.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::core {

struct VerifyOptions {
  /// Also require phase_count == topo.aapc_load().
  bool require_optimal_phase_count = true;
};

struct VerifyReport {
  bool ok = true;
  /// Human-readable description of each violation found (empty when ok).
  std::vector<std::string> violations;

  /// Maximum number of messages crossing any directed edge within a
  /// single phase (1 for a contention-free schedule).
  std::int32_t max_edge_multiplicity = 0;

  std::string summary() const;
};

/// Verify `schedule` against `topo`. Never throws on a bad schedule —
/// all problems are reported; throws only on malformed inputs (ranks out
/// of range).
VerifyReport verify_schedule(const topology::Topology& topo,
                             const Schedule& schedule,
                             const VerifyOptions& options = {});

/// Verify a schedule of an arbitrary message multiset (greedy/irregular
/// schedules): condition (1) becomes "realizes `expected` exactly, as a
/// multiset"; condition (2) is unchanged; condition (3) compares the
/// phase count against the pattern load lower bound when
/// require_optimal_phase_count is set.
VerifyReport verify_schedule_pattern(const topology::Topology& topo,
                                     const Schedule& schedule,
                                     const std::vector<Message>& expected,
                                     const VerifyOptions& options = {});

/// Cheap runtime invariant for the execution pipeline: checks only
/// condition (2) — no two messages within any phase share a directed
/// edge — and throws InvalidArgument naming the offending phase and
/// edge. Unlike verify_schedule it makes no coverage or optimality
/// demands, so it also accepts partial schedules (resilience
/// prefix/remainder legs) and deliberately non-optimal baselines.
/// O(total path length); the lowering pipeline runs it on every
/// schedule it lowers (LoweringOptions::verify_schedule), so a
/// corrupted or mis-repaired schedule fails loudly at execution time
/// instead of silently producing contended timings.
void require_contention_free(const topology::Topology& topo,
                             const Schedule& schedule);

}  // namespace aapc::core
