#include "aapc/service/service.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "aapc/common/log.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/core/greedy.hpp"
#include "aapc/core/scheduler.hpp"
#include "aapc/core/verify.hpp"
#include "aapc/core/weighted.hpp"
#include "aapc/sync/sync_plan.hpp"

namespace aapc::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint32_t fingerprint_options(const lowering::LoweringOptions& opts,
                                  bool verify_compiled) {
  // Pack every knob that changes the compiled artifact, then mix. Two
  // services configured differently must never share cache entries.
  std::uint64_t h = 0;
  h |= static_cast<std::uint64_t>(opts.sync);
  h = h * 0x100000001b3ull + opts.sync_message_bytes;
  h = h * 0x100000001b3ull + (opts.reduce_redundant_syncs ? 1 : 0);
  h = h * 0x100000001b3ull + (opts.include_self_copy ? 1 : 0);
  h = h * 0x100000001b3ull + (opts.verify_schedule ? 1 : 0);
  h = h * 0x100000001b3ull + (verify_compiled ? 1 : 0);
  h ^= h >> 32;
  return static_cast<std::uint32_t>(h);
}

std::string format_seconds(double seconds) {
  std::ostringstream os;
  if (seconds >= 1.0) {
    os << seconds << " s";
  } else if (seconds >= 1e-3) {
    os << seconds * 1e3 << " ms";
  } else {
    os << seconds * 1e6 << " us";
  }
  return os.str();
}

}  // namespace

std::uint32_t ScheduleService::size_class(Bytes msize) {
  AAPC_REQUIRE(msize >= 1, "message size must be >= 1 byte");
  // Reject the upper bound here, at request entry: without this, a
  // msize above 2^62 passes validation only to blow up in
  // size_class_bytes (and the shift below would overflow first).
  AAPC_REQUIRE(msize <= (Bytes{1} << 62),
               "message size " << msize
                               << " B exceeds the largest size class (2^62 "
                                  "B); requests this large are unservable");
  std::uint32_t cls = 0;
  while ((Bytes{1} << cls) < msize) ++cls;
  return cls;
}

Bytes ScheduleService::size_class_bytes(std::uint32_t size_class) {
  AAPC_REQUIRE(size_class < 63, "size class " << size_class << " out of range");
  return Bytes{1} << size_class;
}

ScheduleService::ScheduleService(const ServiceOptions& options)
    : options_(options),
      options_fingerprint_(
          fingerprint_options(options.lowering, options.verify_compiled)),
      cache_(options.cache_capacity, options.cache_shards),
      coalesced_waits_(registry_.counter(
          "aapc_service_coalesced_waits_total",
          "Requests that waited on a concurrent compilation of their key")),
      rejected_(registry_.counter(
          "aapc_service_rejected_total",
          "Requests rejected with ServiceOverloaded (pool backpressure)")),
      hash_collisions_(registry_.counter(
          "aapc_service_hash_collisions_total",
          "Canonical-hash collisions compiled inline, uncached")),
      compile_seconds_(registry_.histogram(
          "aapc_service_compile_seconds",
          "End-to-end compilation latency of one canonical artifact")),
      stage_decompose_seconds_(registry_.histogram(
          "aapc_service_stage_decompose_seconds",
          "Wall time of the decomposition stage (root + subtrees)")),
      stage_assign_seconds_(registry_.histogram(
          "aapc_service_stage_assign_seconds",
          "Wall time of the message-assignment stage (Figure 4)")),
      stage_sync_seconds_(registry_.histogram(
          "aapc_service_stage_sync_seconds",
          "Wall time of synchronization-plan construction")),
      stage_lower_seconds_(registry_.histogram(
          "aapc_service_stage_lower_seconds",
          "Wall time of lowering to per-rank programs")),
      compile_ranks_(registry_.gauge(
          "aapc_service_compile_ranks",
          "Machine count of the most recently compiled topology")),
      stale_hits_(registry_.counter(
          "aapc_service_stale_hits_total",
          "Cache hits on entries invalidated by a topology event, served "
          "stale-while-revalidate")),
      patches_(registry_.counter(
          "aapc_service_patches_total",
          "Greedy repair patches computed for stale entries")),
      revalidations_(registry_.counter(
          "aapc_service_revalidations_total",
          "Background recompilations that refreshed an invalidated entry")),
      revalidation_failures_(registry_.counter(
          "aapc_service_revalidation_failures_total",
          "Background recompilations that threw instead of publishing")),
      patch_seconds_(registry_.histogram(
          "aapc_service_patch_seconds",
          "Inline greedy-repair latency on the stale-hit path")),
      revalidation_seconds_(registry_.histogram(
          "aapc_service_revalidation_seconds",
          "Background revalidation latency (weighted recompilation)")),
      pool_(options.compiler_threads, options.queue_capacity,
            options.background_queue_capacity) {
  for (std::uint8_t raw = 0; core::collective_kind_valid(raw); ++raw) {
    requests_[raw] = &registry_.counter(
        "aapc_service_requests_total", "Compile requests received",
        obs::Labels{{"kind", core::collective_kind_name(
                                 static_cast<core::CollectiveKind>(raw))}});
  }
  latency_ring_.reserve(kLatencyReservoirCapacity);
}

CacheKey ScheduleService::cache_key(const Canonicalization& canon,
                                    Bytes msize) const {
  return cache_key(canon, msize, core::CollectiveKind::kAlltoall, {});
}

CacheKey ScheduleService::cache_key(
    const Canonicalization& canon, Bytes msize, core::CollectiveKind kind,
    const core::SparseNeighbors& canonical_neighbors) const {
  CacheKey key{canon.hash, size_class(msize), options_fingerprint_};
  key.kind = static_cast<std::uint8_t>(kind);
  if (kind == core::CollectiveKind::kSparseAlltoall) {
    key.pattern_hash = core::sparse_pattern_hash(canonical_neighbors);
  }
  return key;
}

CompiledEntryPtr ScheduleService::compile_entry(
    const std::string& canonical_form, Bytes class_bytes,
    const TopologyEpochs::View& view, core::CollectiveKind kind,
    const core::SparseNeighbors& neighbors) {
  const Clock::time_point start = Clock::now();
  auto entry = std::make_shared<CompiledEntry>();
  entry->canonical_form = canonical_form;
  entry->canonical_topo = build_canonical_topology(canonical_form);
  entry->class_bytes = class_bytes;
  entry->epoch = view.epoch;
  entry->kind = kind;
  entry->neighbors = neighbors;
  const topology::Topology& topo = entry->canonical_topo;
  compile_ranks_.set(static_cast<double>(topo.machine_count()));

  // A degraded rate vector switches alltoall compilation to the
  // weighted scheduler (core/weighted.hpp): the phase assignment
  // minimizes the weighted bottleneck cost instead of the
  // uniform-capacity phase count. Entries for topologies whose links
  // are all nominal take the paper's pipeline unchanged. The ring
  // pipelines are rate-independent by construction (every round
  // crosses every ring edge once), so the other kinds never reroute.
  const bool weighted =
      kind == core::CollectiveKind::kAlltoall &&
      static_cast<std::int32_t>(view.rates.size()) == topo.link_count() &&
      !core::uniform_rates(view.rates);

  Clock::time_point stage = Clock::now();
  if (kind == core::CollectiveKind::kAllgather) {
    entry->schedule = core::build_allgather_schedule(topo);
  } else if (kind == core::CollectiveKind::kReduceScatter) {
    entry->schedule = core::build_reduce_scatter_schedule(topo);
  } else if (kind == core::CollectiveKind::kSparseAlltoall) {
    entry->schedule = core::build_sparse_alltoall_schedule(topo, neighbors);
  } else if (weighted) {
    entry->schedule = core::build_aapc_schedule_weighted(topo, view.rates);
    entry->link_rates = view.rates;
  } else if (topo.machine_count() >= 3) {
    const core::Decomposition dec = core::decompose(topo);
    stage_decompose_seconds_.observe(seconds_since(stage));
    stage = Clock::now();
    if (options_.parallel_assignment) {
      // Emission tasks fan out to whatever pool workers are idle; this
      // thread participates, so saturation degrades to sequential
      // instead of deadlocking. The result is bit-identical either way.
      entry->schedule = core::assign_messages_hierarchical(
          dec, core::AssignmentOptions{},
          [this](const std::vector<core::Task>& tasks) {
            pool_.run_tasks(tasks);
          });
    } else {
      entry->schedule = core::assign_messages(dec);
    }
  } else {
    // Degenerate sizes (|M| <= 2) have no decomposition; the whole
    // build is charged to the assign stage.
    entry->schedule = core::build_aapc_schedule(topo);
  }
  stage_assign_seconds_.observe(seconds_since(stage));

  if (options_.verify_compiled) {
    if (kind == core::CollectiveKind::kAlltoall) {
      // Weighted schedules trade extra phases for a lower weighted
      // cost, so only contention-freeness and coverage apply.
      core::VerifyOptions verify_options;
      verify_options.require_optimal_phase_count = !weighted;
      const core::VerifyReport report =
          core::verify_schedule(topo, entry->schedule, verify_options);
      AAPC_CHECK_MSG(report.ok, "compiled schedule failed verification:\n"
                                    << report.summary());
    } else {
      // Per-kind pattern coverage + contention freedom, with the
      // bandwidth-optimality bound enforced for the ring pipelines.
      const core::VerifyReport report =
          core::verify_collective_schedule(topo, entry->schedule, neighbors);
      AAPC_CHECK_MSG(report.ok,
                     "compiled " << core::collective_kind_name(kind)
                                 << " schedule failed verification:\n"
                                 << report.summary());
    }
  }

  stage = Clock::now();
  // The cached plan must match the programs lowered from it, so it
  // follows the service's reduction knob rather than the plan default.
  sync::SyncPlanOptions plan_options;
  plan_options.remove_redundant = options_.lowering.reduce_redundant_syncs;
  entry->sync_plan = sync::build_sync_plan(topo, entry->schedule,
                                           plan_options);
  stage_sync_seconds_.observe(seconds_since(stage));

  stage = Clock::now();
  lowering::LoweringOptions lower_options = options_.lowering;
  if (lower_options.sync == lowering::SyncMode::kPairwise) {
    lower_options.precomputed_plan = &entry->sync_plan;
  }
  entry->programs = lowering::lower_schedule(topo, entry->schedule,
                                             class_bytes, lower_options,
                                             &entry->info);
  stage_lower_seconds_.observe(seconds_since(stage));
  entry->compile_seconds = seconds_since(start);
  record_compile_latency(entry->compile_seconds);
  AAPC_DEBUG("compiled canonical topology ("
             << entry->canonical_topo.machine_count() << " machines, class "
             << class_bytes << " B) in "
             << format_seconds(entry->compile_seconds));
  return entry;
}

CompiledEntryPtr ScheduleService::patch_stale_entry(
    const CacheKey& key, const CompiledEntryPtr& stale_entry,
    const TopologyEpochs::View& view) {
  {
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    const auto it = patched_.find(key);
    if (it != patched_.end() && it->second.first == view.invalidated_at) {
      return it->second.second;
    }
  }
  // The same rate-blind greedy repair the fault layer splices into
  // running schedules (faults/repair.hpp): reschedule the full pattern
  // first-fit, ignoring rates. Cheap and always valid, but it smears
  // slow-link traffic across phases — the background weighted
  // recompilation exists to beat it.
  const Clock::time_point start = Clock::now();
  const topology::Topology& topo = stale_entry->canonical_topo;
  auto patched = std::make_shared<CompiledEntry>();
  patched->canonical_form = stale_entry->canonical_form;
  patched->canonical_topo = topo;
  patched->class_bytes = stale_entry->class_bytes;
  patched->epoch = stale_entry->epoch;  // still pre-event: stays stale
  patched->stale = true;
  patched->link_rates = view.rates;
  patched->kind = stale_entry->kind;
  patched->neighbors = stale_entry->neighbors;
  patched->schedule = core::greedy_schedule(
      topo, core::collective_pattern(topo, stale_entry->kind,
                                     stale_entry->neighbors));
  patched->schedule.kind = stale_entry->kind;
  if (options_.verify_compiled) {
    core::require_contention_free(topo, patched->schedule);
  }
  sync::SyncPlanOptions plan_options;
  plan_options.remove_redundant = options_.lowering.reduce_redundant_syncs;
  patched->sync_plan =
      sync::build_sync_plan(topo, patched->schedule, plan_options);
  lowering::LoweringOptions lower_options = options_.lowering;
  if (lower_options.sync == lowering::SyncMode::kPairwise) {
    lower_options.precomputed_plan = &patched->sync_plan;
  }
  patched->programs =
      lowering::lower_schedule(topo, patched->schedule, patched->class_bytes,
                               lower_options, &patched->info);
  patched->compile_seconds = seconds_since(start);
  patches_.inc();
  patch_seconds_.observe(patched->compile_seconds);
  CompiledEntryPtr result = patched;
  {
    // Concurrent stale hits may race here; the patch is deterministic,
    // so last-writer-wins is benign.
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    patched_[key] = {view.invalidated_at, result};
  }
  return result;
}

void ScheduleService::schedule_revalidation(
    const CacheKey& key, const std::string& canonical_form, Bytes class_bytes,
    std::uint64_t hash, core::CollectiveKind kind,
    const core::SparseNeighbors& neighbors) {
  {
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    if (!revalidating_.insert(key).second) return;  // one per key
  }
  auto task = [this, key, canonical_form, class_bytes, hash, kind, neighbors] {
    const Clock::time_point start = Clock::now();
    try {
      // Snapshot the epoch feed at compile start: if another event
      // lands mid-compile, the published entry's epoch predates it and
      // the next hit revalidates again.
      const TopologyEpochs::View view = epochs_.view(hash);
      CompiledEntryPtr entry =
          compile_entry(canonical_form, class_bytes, view, kind, neighbors);
      cache_.put(key, entry);
      revalidations_.inc();
      revalidation_seconds_.observe(seconds_since(start));
    } catch (...) {
      revalidation_failures_.inc();
    }
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    revalidating_.erase(key);
    patched_.erase(key);
  };
  if (!pool_.try_submit_background(std::move(task))) {
    // Lane full: drop silently (pool counts it); the marker goes away
    // so the next stale hit retries.
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    revalidating_.erase(key);
  }
}

CompiledRoutine ScheduleService::finish(const Canonicalization& canon,
                                        CompiledEntryPtr entry, bool cache_hit,
                                        bool coalesced, std::uint64_t epoch,
                                        Clock::time_point start) const {
  CompiledRoutine routine;
  const std::vector<topology::Rank> from_canonical =
      core::invert_permutation(canon.to_canonical);
  routine.schedule = core::relabel_schedule(entry->schedule, from_canonical);
  routine.programs = mpisim::relabel_program_set(entry->programs,
                                                 from_canonical);
  routine.stale = entry->stale;
  routine.entry = std::move(entry);
  routine.to_canonical = canon.to_canonical;
  routine.cache_hit = cache_hit;
  routine.coalesced = coalesced;
  routine.epoch = epoch;
  routine.service_seconds = seconds_since(start);
  return routine;
}

double ScheduleService::retry_after_hint() const {
  // Expected time for the backlog to drain: (queued + executing) tasks
  // at the observed median compile cost over the worker count, floored
  // at a small constant so a cold service still suggests a real pause.
  // The median comes from the bounded recent-latency ring via
  // nth_element — this runs on the rejection path, so no full sort and
  // no unbounded history under the lock.
  double median = 0.05;
  {
    const std::lock_guard<std::mutex> lock(latency_mutex_);
    if (!latency_ring_.empty()) {
      std::vector<double> recent = latency_ring_;
      const auto mid = recent.begin() +
                       static_cast<std::ptrdiff_t>(recent.size() / 2);
      std::nth_element(recent.begin(), mid, recent.end());
      median = std::max(*mid, 1e-3);
    }
  }
  const CompilerPool::Stats pool = pool_.stats();
  const double backlog =
      static_cast<double>(pool.queue_depth + pool_.thread_count());
  return median * backlog / static_cast<double>(pool_.thread_count());
}

void ScheduleService::record_compile_latency(double seconds) {
  compile_seconds_.observe(seconds);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  if (latency_ring_.size() < kLatencyReservoirCapacity) {
    latency_ring_.push_back(seconds);
  } else {
    latency_ring_[latency_next_] = seconds;
    latency_next_ = (latency_next_ + 1) % kLatencyReservoirCapacity;
  }
}

std::size_t ScheduleService::latency_reservoir_size() const {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  return latency_ring_.size();
}

CompiledRoutine ScheduleService::compile(const topology::Topology& topo,
                                         Bytes msize) {
  return compile(topo, msize, canonicalize(topo));
}

CompiledRoutine ScheduleService::compile(const topology::Topology& topo,
                                         Bytes msize,
                                         const Canonicalization& canon) {
  return compile(topo, msize, canon, core::CollectiveKind::kAlltoall, {});
}

CompiledRoutine ScheduleService::compile(
    const topology::Topology& topo, Bytes msize, core::CollectiveKind kind,
    const core::SparseNeighbors& neighbors) {
  return compile(topo, msize, canonicalize(topo), kind, neighbors);
}

CompiledRoutine ScheduleService::compile(
    const topology::Topology& topo, Bytes msize, const Canonicalization& canon,
    core::CollectiveKind kind, const core::SparseNeighbors& neighbors) {
  const Clock::time_point start = Clock::now();
  AAPC_REQUIRE(static_cast<std::int32_t>(canon.to_canonical.size()) ==
                   topo.machine_count(),
               "canonicalization covers " << canon.to_canonical.size()
                                          << " ranks but the topology has "
                                          << topo.machine_count());
  // Neighbor sets are keyed, compiled, and cached in canonical rank
  // space so isomorphic sparse requests share one artifact; non-sparse
  // kinds must not smuggle a pattern in.
  core::SparseNeighbors canonical_neighbors;
  if (kind == core::CollectiveKind::kSparseAlltoall) {
    canonical_neighbors = core::relabel_neighbors(
        core::normalize_neighbors(topo.machine_count(), neighbors),
        canon.to_canonical);
  } else {
    AAPC_REQUIRE(neighbors.empty(),
                 "neighbor sets are only meaningful for sparse_alltoall, not "
                     << core::collective_kind_name(kind));
  }
  requests_[static_cast<std::size_t>(kind)]->inc();
  const CacheKey key = cache_key(canon, msize, kind, canonical_neighbors);
  const Bytes class_bytes = size_class_bytes(key.size_class);
  const TopologyEpochs::View view = epochs_.view(canon.hash);

  if (CompiledEntryPtr entry =
          cache_.get(key, canon.canonical_form, &canonical_neighbors)) {
    if (entry->epoch >= view.invalidated_at) {
      return finish(canon, std::move(entry), /*cache_hit=*/true,
                    /*coalesced=*/false, view.epoch, start);
    }
    // The entry predates a topology event on its links. Availability
    // first: answer right now with a greedy-patched repair (stamped
    // stale), and refresh the cache with a weighted recompilation in
    // the background. Invalidation is this lazy check — nothing was
    // evicted, and hashes on untouched links never reach this branch.
    stale_hits_.inc();
    CompiledEntryPtr patched = patch_stale_entry(key, entry, view);
    schedule_revalidation(key, canon.canonical_form, class_bytes, canon.hash,
                          kind, canonical_neighbors);
    return finish(canon, std::move(patched), /*cache_hit=*/true,
                  /*coalesced=*/false, view.epoch, start);
  }

  // Miss: coalesce with an in-flight compilation of the same key, or
  // become the one request that submits it.
  std::shared_future<CompiledEntryPtr> future;
  // shared_ptr because std::function requires copyable callables and
  // std::promise is move-only.
  std::shared_ptr<std::promise<CompiledEntryPtr>> promise;
  bool leader = false;
  CompiledEntryPtr late_hit;
  {
    const std::lock_guard<std::mutex> lock(in_flight_mutex_);
    const auto it = in_flight_.find(key);
    if (it != in_flight_.end()) {
      future = it->second;
      coalesced_waits_.inc();
    } else {
      // Double-check the cache before becoming the leader: another
      // request may have published this key between our miss above and
      // taking the in-flight lock (its marker is already gone), and
      // compiling again would break the one-compilation-per-key
      // guarantee. Lock order in_flight -> shard is safe: no path holds
      // a shard lock while taking the in-flight lock.
      late_hit = cache_.get(key, canon.canonical_form, &canonical_neighbors);
      if (late_hit == nullptr) {
        promise = std::make_shared<std::promise<CompiledEntryPtr>>();
        future = promise->get_future().share();
        in_flight_.emplace(key, future);
        leader = true;
      }
    }
  }
  if (late_hit != nullptr) {
    if (late_hit->epoch >= view.invalidated_at) {
      return finish(canon, std::move(late_hit), /*cache_hit=*/true,
                    /*coalesced=*/false, view.epoch, start);
    }
    stale_hits_.inc();
    CompiledEntryPtr patched = patch_stale_entry(key, late_hit, view);
    schedule_revalidation(key, canon.canonical_form, class_bytes, canon.hash,
                          kind, canonical_neighbors);
    return finish(canon, std::move(patched), /*cache_hit=*/true,
                  /*coalesced=*/false, view.epoch, start);
  }

  if (leader) {
    // The task owns the promise: it publishes to the cache, resolves
    // every coalesced waiter, and removes the in-flight marker (in that
    // order, so a request arriving after removal finds the cache entry).
    auto task = [this, key, form = canon.canonical_form, class_bytes, view,
                 kind, canonical_neighbors, task_promise = promise]() {
      try {
        CompiledEntryPtr entry =
            compile_entry(form, class_bytes, view, kind, canonical_neighbors);
        cache_.put(key, entry);
        task_promise->set_value(std::move(entry));
      } catch (...) {
        task_promise->set_exception(std::current_exception());
      }
      const std::lock_guard<std::mutex> lock(in_flight_mutex_);
      in_flight_.erase(key);
    };
    try {
      pool_.submit(std::move(task));
    } catch (const PoolSaturated& saturated) {
      // Fail this request and every waiter already coalesced onto it;
      // the in-flight marker goes away so a retry can submit afresh.
      // (submit only throws before taking ownership of the task, so the
      // promise is still ours to resolve here.)
      rejected_.inc();
      const double retry_after = retry_after_hint();
      ServiceOverloaded overloaded(
          std::string(saturated.what()) + " — retry after " +
              format_seconds(retry_after),
          retry_after);
      promise->set_exception(std::make_exception_ptr(overloaded));
      {
        const std::lock_guard<std::mutex> lock(in_flight_mutex_);
        in_flight_.erase(key);
      }
      throw overloaded;
    }
  }

  CompiledEntryPtr entry = future.get();  // rethrows compilation errors
  if (entry->canonical_form != canon.canonical_form ||
      entry->kind != kind || entry->neighbors != canonical_neighbors) {
    // 64-bit hash collision between two distinct canonical forms (or,
    // for sparse, two distinct neighbor patterns): the in-flight
    // compilation we waited on was for the other request. Serve
    // correctness over throughput: compile inline, uncached.
    hash_collisions_.inc();
    AAPC_WARN("canonical hash collision (hash "
              << canon.hash << "); compiling inline without caching");
    entry = compile_entry(canon.canonical_form, class_bytes, view, kind,
                          canonical_neighbors);
  }
  return finish(canon, std::move(entry), /*cache_hit=*/false, !leader,
                view.epoch, start);
}

void ScheduleService::sync_mirrors() const {
  const CacheStats cache = cache_.stats();
  registry_
      .counter("aapc_service_cache_hits_total",
               "Requests served from the schedule cache")
      .set_total(cache.hits);
  registry_
      .counter("aapc_service_cache_misses_total",
               "Requests whose key was absent from the cache")
      .set_total(cache.misses);
  registry_
      .counter("aapc_service_cache_evictions_total",
               "Entries displaced by the shard LRU policy")
      .set_total(cache.evictions);
  registry_
      .gauge("aapc_service_cache_entries",
             "Compiled artifacts currently cached, all shards")
      .set(static_cast<double>(cache.entries));
  const CompilerPool::Stats pool = pool_.stats();
  registry_
      .gauge("aapc_service_queue_depth",
             "Compilations queued but not yet executing")
      .set(static_cast<double>(pool.queue_depth));
  registry_
      .gauge("aapc_service_peak_queue_depth",
             "High-water mark of the compiler pool queue")
      .set_max(static_cast<double>(pool.peak_queue_depth));
  registry_
      .gauge("aapc_service_background_queue_depth",
             "Revalidations queued on the background lane")
      .set(static_cast<double>(pool.background_queue_depth));
  registry_
      .counter("aapc_service_revalidations_dropped_total",
               "Revalidations dropped because the background lane was full")
      .set_total(pool.background_rejected);
  const TopologyEpochs::Stats epochs = epochs_.stats();
  registry_
      .gauge("aapc_service_epoch",
             "Current topology epoch (bumps once per link event)")
      .set(static_cast<double>(epochs.epoch));
  registry_
      .counter("aapc_service_link_events_total",
               "Physical link rate events applied to the epoch feed")
      .set_total(epochs.link_events);
  registry_
      .counter("aapc_service_invalidations_total",
               "Cache invalidations stamped by link events (one per bound "
               "topology per event on its links)")
      .set_total(epochs.invalidations);
  registry_
      .gauge("aapc_service_bound_topologies",
             "Canonical topologies bound to physical links")
      .set(static_cast<double>(epochs.bound_topologies));
}

obs::RegistrySnapshot ScheduleService::metrics_snapshot() const {
  sync_mirrors();
  return registry_.snapshot();
}

MetricsSnapshot ScheduleService::metrics() const {
  const obs::RegistrySnapshot snap = metrics_snapshot();
  auto count = [&snap](std::string_view name) {
    const obs::SeriesSnapshot* series = snap.find(name);
    return series != nullptr ? series->counter : 0;
  };
  MetricsSnapshot snapshot;
  // requests is labeled per collective kind; sum the series.
  snapshot.requests = static_cast<std::int64_t>(
      snap.total("aapc_service_requests_total"));
  snapshot.coalesced_waits = count("aapc_service_coalesced_waits_total");
  snapshot.rejected = count("aapc_service_rejected_total");
  snapshot.hash_collisions = count("aapc_service_hash_collisions_total");
  snapshot.cache_hits = count("aapc_service_cache_hits_total");
  snapshot.cache_misses = count("aapc_service_cache_misses_total");
  snapshot.cache_evictions = count("aapc_service_cache_evictions_total");
  snapshot.cache_entries =
      static_cast<std::int64_t>(snap.value("aapc_service_cache_entries"));
  snapshot.queue_depth =
      static_cast<std::int64_t>(snap.value("aapc_service_queue_depth"));
  snapshot.peak_queue_depth =
      static_cast<std::int64_t>(snap.value("aapc_service_peak_queue_depth"));
  snapshot.stale_hits = count("aapc_service_stale_hits_total");
  snapshot.patches = count("aapc_service_patches_total");
  snapshot.revalidations = count("aapc_service_revalidations_total");
  snapshot.revalidation_failures =
      count("aapc_service_revalidation_failures_total");
  snapshot.revalidations_dropped =
      count("aapc_service_revalidations_dropped_total");
  snapshot.epoch = static_cast<std::int64_t>(snap.value("aapc_service_epoch"));
  snapshot.link_events = count("aapc_service_link_events_total");
  snapshot.invalidations = count("aapc_service_invalidations_total");
  if (const obs::SeriesSnapshot* compile =
          snap.find("aapc_service_compile_seconds")) {
    snapshot.compilations = compile->histogram.count;
    snapshot.compile_p50_seconds = compile->histogram.quantile(0.5);
    snapshot.compile_p95_seconds = compile->histogram.quantile(0.95);
    snapshot.compile_max_seconds = compile->histogram.max;
  }
  return snapshot;
}

TextTable MetricsSnapshot::table() const {
  TextTable table;
  table.set_header({"metric", "value"});
  auto add = [&](const std::string& name, const std::string& value) {
    table.add_row({name, value});
  };
  add("requests", std::to_string(requests));
  add("cache hits", std::to_string(cache_hits));
  add("cache misses", std::to_string(cache_misses));
  {
    std::ostringstream os;
    os << hit_rate() * 100.0 << " %";
    add("hit rate", os.str());
  }
  add("coalesced waits", std::to_string(coalesced_waits));
  add("compilations", std::to_string(compilations));
  add("rejected (backpressure)", std::to_string(rejected));
  add("hash collisions", std::to_string(hash_collisions));
  add("cache entries", std::to_string(cache_entries));
  add("cache evictions", std::to_string(cache_evictions));
  add("queue depth", std::to_string(queue_depth));
  add("peak queue depth", std::to_string(peak_queue_depth));
  add("topology epoch", std::to_string(epoch));
  add("link events", std::to_string(link_events));
  add("invalidations", std::to_string(invalidations));
  add("stale hits", std::to_string(stale_hits));
  add("patches", std::to_string(patches));
  add("revalidations", std::to_string(revalidations));
  add("revalidation failures", std::to_string(revalidation_failures));
  add("revalidations dropped", std::to_string(revalidations_dropped));
  add("compile p50", format_seconds(compile_p50_seconds));
  add("compile p95", format_seconds(compile_p95_seconds));
  add("compile max", format_seconds(compile_max_seconds));
  return table;
}

std::string MetricsSnapshot::to_string() const { return table().render(); }

}  // namespace aapc::service
