// Sharded LRU cache of compiled schedules.
//
// The unit of caching is one *canonical* compilation: the phase schedule,
// synchronization plan, and lowered per-rank programs produced for a
// canonical topology (service/canonical.hpp) at one message-size class
// under one set of lowering options. Entries are immutable and shared
// (shared_ptr<const CompiledEntry>), so a hit hands out the artifact
// without copying and eviction never invalidates a routine already
// served.
//
// Sharding: the key hash picks a shard; each shard has its own mutex and
// LRU list, so concurrent lookups for different topologies do not
// serialize on one lock. Capacity is divided evenly across shards
// (per-shard LRU, the standard approximation of global LRU).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/core/collectives.hpp"
#include "aapc/core/schedule.hpp"
#include "aapc/core/weighted.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/mpisim/program.hpp"
#include "aapc/sync/sync_plan.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::service {

/// Cache key: canonical topology identity + message-size class +
/// compilation-options fingerprint + collective kind (+ the sparse
/// pattern digest for sparse_alltoall). Two requests with equal keys
/// are served by one compiled artifact; distinct kinds on the same
/// topology must never alias — without `kind` in the key an allgather
/// request would be served a cached alltoall schedule.
struct CacheKey {
  std::uint64_t topology_hash = 0;
  std::uint32_t size_class = 0;
  std::uint32_t options_fingerprint = 0;
  /// core::CollectiveKind as its wire byte (appended so the historical
  /// three-field aggregate initializers keep meaning alltoall).
  std::uint8_t kind = 0;
  /// core::sparse_pattern_hash of the canonically-relabeled neighbor
  /// sets; 0 for every non-sparse kind.
  std::uint64_t pattern_hash = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const noexcept {
    // splitmix64 finalizer over the fields packed into one word
    // stream; topology_hash already avalanches, the mix spreads the
    // low-entropy class/options/kind fields.
    std::uint64_t h = key.topology_hash ^
                      (static_cast<std::uint64_t>(key.size_class) << 32) ^
                      static_cast<std::uint64_t>(key.options_fingerprint) ^
                      (static_cast<std::uint64_t>(key.kind) << 56) ^
                      (key.pattern_hash * 0x9e3779b97f4a7c15ull);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// One compiled schedule in canonical rank labeling. Immutable once
/// published to the cache.
struct CompiledEntry {
  /// Canonical form the entry was compiled for — compared on every hit,
  /// so a 64-bit hash collision degrades to a miss instead of serving a
  /// schedule for the wrong topology.
  std::string canonical_form;
  /// The canonical topology (reconstructed from the form).
  topology::Topology canonical_topo;
  /// Phase schedule in canonical ranks.
  core::Schedule schedule;
  /// Pair-wise synchronization plan for `schedule`.
  sync::SyncPlan sync_plan;
  /// Lowered per-rank programs at `class_bytes`, canonical ranks.
  mpisim::ProgramSet programs;
  lowering::LoweringInfo info;
  /// Representative message size of the entry's size class.
  Bytes class_bytes = 0;
  /// Wall-clock cost of the compilation that produced this entry.
  double compile_seconds = 0;
  /// Topology epoch (service/epochs.hpp) the entry was compiled
  /// against. The service treats the entry as fresh iff this is >=
  /// the hash's invalidation epoch; entries compiled before churn was
  /// introduced (or for never-bound topologies) carry 0 and stay fresh
  /// forever unless their links take an event.
  std::uint64_t epoch = 0;
  /// True for the greedy-patched artifacts served stale-while-revalidate
  /// (never stored in this cache — they live in the service's patch
  /// side-buffer until revalidation replaces them).
  bool stale = false;
  /// Residual link rates (canonical link space) the schedule was built
  /// for; empty when compiled rate-blind at nominal rates.
  core::LinkRates link_rates;
  /// The collective the entry realizes (mirrors schedule.kind; also
  /// compared on hits so a key collision across kinds is a miss).
  core::CollectiveKind kind = core::CollectiveKind::kAlltoall;
  /// Normalized neighbor sets in canonical ranks (sparse_alltoall
  /// only); compared on hits like canonical_form so a pattern-hash
  /// collision degrades to a miss.
  core::SparseNeighbors neighbors;
};

using CompiledEntryPtr = std::shared_ptr<const CompiledEntry>;

/// Monotonic counters aggregated over all shards.
struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;  // current
};

class ScheduleCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `shards`
  /// (each shard holds at least one entry).
  ScheduleCache(std::size_t capacity, std::size_t shards);

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Returns the entry for `key` (promoting it to most-recently-used)
  /// or nullptr. `canonical_form` guards against hash collisions: an
  /// entry whose stored form differs is not returned. `neighbors`,
  /// when non-null, extends the guard to the sparse pattern (a
  /// pattern-hash collision is a miss, never a wrong schedule).
  CompiledEntryPtr get(const CacheKey& key, const std::string& canonical_form,
                       const core::SparseNeighbors* neighbors = nullptr);

  /// Inserts (or replaces) the entry for `key`, evicting the shard's
  /// least-recently-used entry when over budget.
  void put(const CacheKey& key, CompiledEntryPtr entry);

  CacheStats stats() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    mutable std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, CompiledEntryPtr>> lru;
    std::unordered_map<CacheKey,
                       std::list<std::pair<CacheKey, CompiledEntryPtr>>::iterator,
                       CacheKeyHash>
        index;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
  };

  Shard& shard_for(const CacheKey& key);

  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aapc::service
