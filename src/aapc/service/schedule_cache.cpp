#include "aapc/service/schedule_cache.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::service {

ScheduleCache::ScheduleCache(std::size_t capacity, std::size_t shards) {
  AAPC_REQUIRE(capacity >= 1, "cache capacity must be >= 1");
  AAPC_REQUIRE(shards >= 1, "cache must have >= 1 shard");
  shards = std::min(shards, capacity);  // no zero-capacity shards
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ScheduleCache::Shard& ScheduleCache::shard_for(const CacheKey& key) {
  return *shards_[CacheKeyHash{}(key) % shards_.size()];
}

CompiledEntryPtr ScheduleCache::get(const CacheKey& key,
                                    const std::string& canonical_form,
                                    const core::SparseNeighbors* neighbors) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end() ||
      it->second->second->canonical_form != canonical_form ||
      it->second->second->kind != static_cast<core::CollectiveKind>(key.kind) ||
      (neighbors != nullptr && it->second->second->neighbors != *neighbors)) {
    ++shard.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->second;
}

void ScheduleCache::put(const CacheKey& key, CompiledEntryPtr entry) {
  AAPC_REQUIRE(entry != nullptr, "cache cannot store a null entry");
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (a coalescing race can compile the same key
    // twice across service restarts/option changes); keep MRU position.
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats ScheduleCache::stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.entries += static_cast<std::int64_t>(shard->lru.size());
  }
  return total;
}

}  // namespace aapc::service
