// Topology canonicalization for the schedule-compilation service.
//
// Two clusters that differ only in how ranks and switches are labeled
// have isomorphic trees, and the paper's algorithm produces structurally
// identical schedules for them. The service therefore caches compiled
// schedules under an *canonical form* of the topology: an AHU-style
// encoding (Aho/Hopcroft/Ullman tree canonization) of the machine-leaf
// tree, rooted at the tree center so the form is invariant under any
// relabeling of ranks, switches, or insertion order.
//
// canonicalize() also returns the rank permutation induced by the
// canonizing isomorphism, so a schedule compiled once on the canonical
// topology can be rewritten into any caller's labeling
// (core::relabel_schedule / mpisim::relabel_program_set). Because the
// permutation comes from a tree isomorphism, paths map to paths and the
// rewritten schedule is contention-free exactly when the cached one is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/topology/topology.hpp"

namespace aapc::service {

/// Canonical identity of a topology plus the mapping back to the caller.
struct Canonicalization {
  /// Stable 64-bit content hash of `canonical_form` (FNV-1a; identical
  /// across processes and platforms). The cache key component.
  std::uint64_t hash = 0;

  /// AHU encoding of the tree rooted at its center: machines render as
  /// "M", switches as "S(...)" with child encodings concatenated in
  /// sorted order. Any two isomorphic topologies produce byte-identical
  /// forms; the cache stores it to rule out hash collisions exactly.
  std::string canonical_form;

  /// to_canonical[caller rank] = rank of the same machine in the
  /// canonical topology (the one build_canonical_topology(canonical_form)
  /// reconstructs).
  std::vector<topology::Rank> to_canonical;

  /// link_to_canonical[caller LinkId] = LinkId of the same physical
  /// link in the canonical topology. Derived from the same preorder
  /// walk that assigns ranks: build_canonical_topology creates nodes in
  /// form-string order and links one per non-root node, so the link of
  /// the k-th created node is canonical LinkId k-1. This is what lets
  /// the churn layer (service/epochs.hpp) translate a physical link
  /// event into the canonical link space cached artifacts live in.
  std::vector<topology::LinkId> link_to_canonical;
};

/// Computes the canonical form, hash, and rank permutation of `topo`.
/// `topo` must be finalized. O(n^2) worst case on path-shaped trees
/// (string-concatenation AHU) — microseconds at cluster scales.
Canonicalization canonicalize(const topology::Topology& topo);

/// Rebuilds the canonical topology from its form string: node kinds and
/// shape only (auto-generated names), machines added in canonical rank
/// order, finalized. Every caller holding an isomorphic topology
/// reconstructs the byte-identical Topology, so compiled artifacts are
/// shareable across them.
topology::Topology build_canonical_topology(const std::string& canonical_form);

/// The stable hash canonicalize() applies to a form string.
std::uint64_t canonical_hash(const std::string& canonical_form);

}  // namespace aapc::service
