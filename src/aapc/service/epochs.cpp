#include "aapc/service/epochs.hpp"

#include <algorithm>

#include "aapc/common/error.hpp"

namespace aapc::service {

namespace {

double clamp_factor(double factor) {
  return std::min(1.0, std::max(TopologyEpochs::kMinRate, factor));
}

}  // namespace

void TopologyEpochs::bind(std::uint64_t hash,
                          const std::vector<LinkBinding>& links,
                          std::int32_t canonical_link_count) {
  AAPC_REQUIRE(canonical_link_count >= 0, "negative canonical link count");
  for (const LinkBinding& b : links) {
    AAPC_REQUIRE(b.physical_link >= 0,
                 "binding with negative physical link " << b.physical_link);
    AAPC_REQUIRE(b.canonical_link >= 0 &&
                     b.canonical_link < canonical_link_count,
                 "canonical link " << b.canonical_link
                                   << " out of range (count "
                                   << canonical_link_count << ")");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto old = bindings_.find(hash);
  if (old != bindings_.end()) {
    for (const LinkBinding& b : old->second.links) {
      const auto rev = reverse_.find(b.physical_link);
      if (rev != reverse_.end()) {
        rev->second.erase(hash);
        if (rev->second.empty()) reverse_.erase(rev);
      }
    }
  }
  Binding binding;
  binding.links = links;
  binding.rates.assign(static_cast<std::size_t>(canonical_link_count), 1.0);
  for (const LinkBinding& b : links) {
    const auto factor = link_factor_.find(b.physical_link);
    if (factor != link_factor_.end()) {
      binding.rates[static_cast<std::size_t>(b.canonical_link)] =
          factor->second;
      binding.degraded = true;
    }
    reverse_[b.physical_link].insert(hash);
  }
  bindings_[hash] = std::move(binding);
}

void TopologyEpochs::unbind(std::uint64_t hash) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = bindings_.find(hash);
  if (it == bindings_.end()) return;
  for (const LinkBinding& b : it->second.links) {
    const auto rev = reverse_.find(b.physical_link);
    if (rev != reverse_.end()) {
      rev->second.erase(hash);
      if (rev->second.empty()) reverse_.erase(rev);
    }
  }
  bindings_.erase(it);
}

TopologyEpochs::EventResult TopologyEpochs::link_event(
    std::int32_t physical_link, double factor) {
  AAPC_REQUIRE(physical_link >= 0,
               "negative physical link " << physical_link);
  AAPC_REQUIRE(factor >= 0, "negative rate factor " << factor);
  const double rate = clamp_factor(factor);
  const std::lock_guard<std::mutex> lock(mutex_);
  EventResult result;
  result.epoch = ++epoch_;
  ++link_events_;
  if (rate >= 1.0) {
    link_factor_.erase(physical_link);
  } else {
    link_factor_[physical_link] = rate;
  }
  const auto rev = reverse_.find(physical_link);
  if (rev != reverse_.end()) {
    for (const std::uint64_t hash : rev->second) {
      invalidated_[hash] = epoch_;
      ++result.invalidated;
      Binding& binding = bindings_.at(hash);
      binding.degraded = false;
      for (const LinkBinding& b : binding.links) {
        const auto f = link_factor_.find(b.physical_link);
        binding.rates[static_cast<std::size_t>(b.canonical_link)] =
            f != link_factor_.end() ? f->second : 1.0;
        if (f != link_factor_.end()) binding.degraded = true;
      }
    }
  }
  invalidations_ += result.invalidated;
  return result;
}

std::uint64_t TopologyEpochs::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

std::uint64_t TopologyEpochs::invalidated_at(std::uint64_t hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = invalidated_.find(hash);
  return it != invalidated_.end() ? it->second : 0;
}

TopologyEpochs::View TopologyEpochs::view(std::uint64_t hash) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  View view;
  view.epoch = epoch_;
  const auto stamp = invalidated_.find(hash);
  if (stamp != invalidated_.end()) view.invalidated_at = stamp->second;
  const auto binding = bindings_.find(hash);
  if (binding != bindings_.end() && binding->second.degraded) {
    view.rates = binding->second.rates;
  }
  return view;
}

TopologyEpochs::Stats TopologyEpochs::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.epoch = epoch_;
  stats.link_events = link_events_;
  stats.invalidations = invalidations_;
  stats.bound_topologies = static_cast<std::int64_t>(bindings_.size());
  return stats;
}

}  // namespace aapc::service
