#include "aapc/service/canonical.hpp"

#include <algorithm>
#include <utility>

#include "aapc/common/error.hpp"

namespace aapc::service {

using topology::NodeId;
using topology::Rank;
using topology::Topology;

namespace {

/// Centers of the tree (1 or 2 nodes): iterative leaf stripping. The
/// center is an isomorphism invariant, which makes the rooted AHU form
/// below invariant under relabeling.
std::vector<NodeId> tree_centers(const Topology& topo) {
  const std::int32_t n = topo.node_count();
  if (n == 1) return {0};
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n));
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    degree[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(topo.neighbors(v).size());
    if (degree[static_cast<std::size_t>(v)] <= 1) frontier.push_back(v);
  }
  std::int32_t remaining = n;
  while (remaining > 2) {
    std::vector<NodeId> next;
    remaining -= static_cast<std::int32_t>(frontier.size());
    for (const NodeId leaf : frontier) {
      degree[static_cast<std::size_t>(leaf)] = 0;
      for (const NodeId peer : topo.neighbors(leaf)) {
        if (--degree[static_cast<std::size_t>(peer)] == 1) {
          next.push_back(peer);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

/// AHU encoding of the subtree rooted at `v` (entered from `parent`),
/// with children concatenated in ascending encoding order. Also records
/// the sorted child order so the rank-assignment pass can walk the tree
/// in exactly the order the form string lists it.
std::string encode_subtree(const Topology& topo, NodeId v, NodeId parent,
                           std::vector<std::vector<NodeId>>& sorted_children) {
  std::vector<std::pair<std::string, NodeId>> child_codes;
  for (const NodeId child : topo.neighbors(v)) {
    if (child == parent) continue;
    child_codes.emplace_back(encode_subtree(topo, child, v, sorted_children),
                             child);
  }
  // Sort by encoding only. Siblings with equal encodings root isomorphic
  // subtrees, so any order among them induces a valid isomorphism onto
  // the canonical topology; std::sort's pair comparison (NodeId
  // tiebreak) keeps the choice deterministic within one call.
  std::sort(child_codes.begin(), child_codes.end());
  std::string code(1, topo.is_machine(v) ? 'M' : 'S');
  if (!child_codes.empty() || !topo.is_machine(v)) {
    code += '(';
    for (const auto& [child_code, child] : child_codes) code += child_code;
    code += ')';
  }
  std::vector<NodeId>& order = sorted_children[static_cast<std::size_t>(v)];
  order.clear();
  order.reserve(child_codes.size());
  for (const auto& [child_code, child] : child_codes) order.push_back(child);
  return code;
}

}  // namespace

std::uint64_t canonical_hash(const std::string& canonical_form) {
  // FNV-1a 64: stable across platforms, no seed, adequate avalanche for
  // a cache key (the cache compares the stored form on hit anyway).
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : canonical_form) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

Canonicalization canonicalize(const Topology& topo) {
  AAPC_REQUIRE(topo.finalized(), "canonicalize: topology must be finalized");
  const std::vector<NodeId> centers = tree_centers(topo);

  Canonicalization best;
  std::vector<std::vector<NodeId>> best_children;
  NodeId best_root = topology::kInvalidNode;
  for (const NodeId center : centers) {
    std::vector<std::vector<NodeId>> sorted_children(
        static_cast<std::size_t>(topo.node_count()));
    std::string form =
        encode_subtree(topo, center, topology::kInvalidNode, sorted_children);
    // Two centers: root at each and keep the lexicographically smaller
    // form (equal forms are byte-identical, so either root serves).
    if (best_root == topology::kInvalidNode || form < best.canonical_form) {
      best.canonical_form = std::move(form);
      best_children = std::move(sorted_children);
      best_root = center;
    }
  }

  // Preorder walk in sorted-child order assigns canonical ranks in the
  // exact order machines appear in the form string — the same order
  // build_canonical_topology() re-creates them in. The same walk yields
  // the link permutation: build_canonical_topology adds one link per
  // non-root node at creation, so the k-th node created (preorder) owns
  // canonical LinkId k-1.
  best.to_canonical.assign(static_cast<std::size_t>(topo.machine_count()), -1);
  best.link_to_canonical.assign(static_cast<std::size_t>(topo.link_count()),
                                -1);
  Rank next_rank = 0;
  NodeId next_node = 1;  // preorder index; the root is node 0
  std::vector<std::pair<NodeId, std::size_t>> stack;  // (node, child index)
  stack.emplace_back(best_root, 0);
  if (topo.is_machine(best_root)) {
    best.to_canonical[static_cast<std::size_t>(topo.rank_of(best_root))] =
        next_rank++;
  }
  while (!stack.empty()) {
    auto& [v, child_index] = stack.back();
    const std::vector<NodeId>& children =
        best_children[static_cast<std::size_t>(v)];
    if (child_index >= children.size()) {
      stack.pop_back();
      continue;
    }
    const NodeId child = children[child_index++];
    if (topo.is_machine(child)) {
      best.to_canonical[static_cast<std::size_t>(topo.rank_of(child))] =
          next_rank++;
    }
    best.link_to_canonical[static_cast<std::size_t>(
        topo.edge_link(topo.edge_between(v, child)))] = next_node - 1;
    ++next_node;
    stack.emplace_back(child, 0);
  }
  AAPC_CHECK(next_rank == topo.machine_count());
  AAPC_CHECK(next_node == topo.node_count());

  best.hash = canonical_hash(best.canonical_form);
  return best;
}

Topology build_canonical_topology(const std::string& canonical_form) {
  AAPC_REQUIRE(!canonical_form.empty(),
               "build_canonical_topology: empty form");
  Topology topo;
  std::size_t pos = 0;
  // Recursive-descent over the grammar  node := ('M' | 'S') [ '(' node* ')' ]
  // (machines only carry a child list in the degenerate 2-machine tree).
  auto parse = [&](auto&& self, NodeId parent) -> void {
    AAPC_REQUIRE(pos < canonical_form.size(),
                 "canonical form truncated at offset " << pos);
    const char kind = canonical_form[pos++];
    AAPC_REQUIRE(kind == 'M' || kind == 'S',
                 "canonical form: unexpected '" << kind << "' at offset "
                                                << (pos - 1));
    const NodeId node =
        kind == 'M' ? topo.add_machine() : topo.add_switch();
    if (parent != topology::kInvalidNode) topo.add_link(parent, node);
    if (pos < canonical_form.size() && canonical_form[pos] == '(') {
      ++pos;
      while (pos < canonical_form.size() && canonical_form[pos] != ')') {
        self(self, node);
      }
      AAPC_REQUIRE(pos < canonical_form.size(),
                   "canonical form: unbalanced '(' at end");
      ++pos;  // consume ')'
    }
  };
  parse(parse, topology::kInvalidNode);
  AAPC_REQUIRE(pos == canonical_form.size(),
               "canonical form: trailing characters at offset " << pos);
  topo.finalize();
  return topo;
}

}  // namespace aapc::service
