// Schedule-compilation service.
//
// The paper's §5 routine generator is a one-shot tool: topology in,
// customized MPI_Alltoall out, recompiled from scratch per invocation.
// This service turns it into an amortizing, concurrency-safe pipeline:
//
//   request (topology, msize)
//     -> canonicalize            relabeling-invariant identity + rank
//                                permutation (service/canonical.hpp)
//     -> sharded LRU cache       hit: rewrite cached artifact into the
//                                caller's labeling, done
//     -> in-flight coalescing    N concurrent misses on one canonical
//                                key trigger exactly one compilation;
//                                the rest wait on its shared future
//     -> compiler pool           bounded queue; when saturated the
//                                request is rejected with a retry-after
//                                hint instead of queueing unboundedly
//
// Compiled artifacts live in canonical rank labeling and are immutable;
// every response rewrites a shared artifact through the caller's rank
// permutation (core::relabel_schedule, mpisim::relabel_program_set),
// which preserves contention-freeness because the permutation comes
// from a tree isomorphism. See docs/SERVICE.md for the architecture,
// cache-key definition, and backpressure contract.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/common/table.hpp"
#include "aapc/common/units.hpp"
#include "aapc/lowering/lower.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/service/canonical.hpp"
#include "aapc/service/compiler_pool.hpp"
#include "aapc/service/epochs.hpp"
#include "aapc/service/schedule_cache.hpp"

namespace aapc::service {

/// Thrown when the compiler pool's bounded queue is full. Callers should
/// back off for at least `retry_after_seconds` before resubmitting.
class ServiceOverloaded : public Error {
 public:
  ServiceOverloaded(const std::string& what, double retry_after_seconds)
      : Error(what), retry_after_seconds_(retry_after_seconds) {}
  double retry_after_seconds() const { return retry_after_seconds_; }

 private:
  double retry_after_seconds_;
};

struct ServiceOptions {
  /// Total cached entries across all shards.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  /// Compilation worker threads.
  std::int32_t compiler_threads = 4;
  /// Queued (not yet executing) compilations before submit rejects.
  std::int32_t queue_capacity = 64;
  /// Queued background revalidations (stale-while-revalidate refresh
  /// after topology churn). A full lane drops the revalidation — the
  /// next stale hit re-schedules it — and never consumes foreground
  /// queue capacity.
  std::int32_t background_queue_capacity = 16;
  /// Lowering configuration applied to every compilation (part of the
  /// cache key, so services with different options never share entries).
  lowering::LoweringOptions lowering;
  /// Run the full independent verifier (core::verify_schedule) on every
  /// compiled schedule before publishing it to the cache.
  bool verify_compiled = true;
  /// Build schedules through the hierarchical assignment, distributing
  /// emission tasks across idle pool workers (the compiling thread
  /// always participates, so this is deadlock-free even when every
  /// worker is itself compiling). Output is bit-identical to the
  /// sequential path, so this is not part of the cache key.
  bool parallel_assignment = true;
};

/// A served routine, rewritten into the caller's rank labeling.
struct CompiledRoutine {
  /// The shared canonical artifact (schedule, sync plan, programs).
  CompiledEntryPtr entry;
  /// Phase schedule in the caller's ranks.
  core::Schedule schedule;
  /// Lowered per-rank programs in the caller's ranks.
  mpisim::ProgramSet programs;
  /// caller rank -> canonical rank (entry->schedule labeling).
  std::vector<topology::Rank> to_canonical;
  /// Served straight from the cache (no compilation waited on).
  bool cache_hit = false;
  /// Waited on a compilation started by a concurrent request.
  bool coalesced = false;
  /// The artifact predates the last topology event on its links: it is
  /// a greedy-patched repair served immediately while a weighted
  /// recompilation refreshes the cache in the background.
  bool stale = false;
  /// Global topology epoch at serve time (see service/epochs.hpp).
  std::uint64_t epoch = 0;
  /// End-to-end wall-clock latency of this request.
  double service_seconds = 0;
};

/// Point-in-time service counters (monotonic unless noted). Assembled
/// from the service's obs::Registry — the aapc_service_* series are
/// the source of truth and this struct is a typed view over them
/// (metrics_snapshot() exposes the raw registry for exporters).
struct MetricsSnapshot {
  std::int64_t requests = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t coalesced_waits = 0;
  std::int64_t compilations = 0;
  std::int64_t rejected = 0;
  std::int64_t hash_collisions = 0;
  std::int64_t cache_entries = 0;    // current
  std::int64_t cache_evictions = 0;
  std::int64_t queue_depth = 0;      // current
  std::int64_t peak_queue_depth = 0;
  std::int64_t stale_hits = 0;
  std::int64_t patches = 0;
  std::int64_t revalidations = 0;
  std::int64_t revalidation_failures = 0;
  std::int64_t revalidations_dropped = 0;
  std::int64_t epoch = 0;            // current
  std::int64_t link_events = 0;
  std::int64_t invalidations = 0;
  double compile_p50_seconds = 0;
  double compile_p95_seconds = 0;
  double compile_max_seconds = 0;

  double hit_rate() const {
    return requests > 0 ? static_cast<double>(cache_hits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
  /// Metric/value table (the aapc_serviced CLI prints this).
  TextTable table() const;
  std::string to_string() const;
};

class ScheduleService {
 public:
  explicit ScheduleService(const ServiceOptions& options = {});

  ScheduleService(const ScheduleService&) = delete;
  ScheduleService& operator=(const ScheduleService&) = delete;

  /// Compiles (or serves from cache) the AAPC routine for `topo` at
  /// message size `msize`, blocking until the artifact is available.
  /// Throws ServiceOverloaded when a compilation would be required but
  /// the pool queue is full; rethrows compilation errors verbatim.
  CompiledRoutine compile(const topology::Topology& topo, Bytes msize);

  /// Same, reusing a canonicalization the caller already computed —
  /// the netd front-end canonicalizes once to pick the backend shard
  /// (canonical hash % shards) and passes the result through so the
  /// shard does not repeat the AHU encoding. `canon` must be
  /// canonicalize(topo) for this exact `topo`.
  CompiledRoutine compile(const topology::Topology& topo, Bytes msize,
                          const Canonicalization& canon);

  /// Compiles a routine of an explicit collective kind. `neighbors`
  /// (caller ranks) is required non-trivial only for kSparseAlltoall
  /// and must be empty for every other kind; it is normalized and
  /// relabeled into canonical ranks before keying, so isomorphic
  /// sparse requests share a cache entry.
  CompiledRoutine compile(const topology::Topology& topo, Bytes msize,
                          core::CollectiveKind kind,
                          const core::SparseNeighbors& neighbors = {});
  CompiledRoutine compile(const topology::Topology& topo, Bytes msize,
                          const Canonicalization& canon,
                          core::CollectiveKind kind,
                          const core::SparseNeighbors& neighbors = {});

  MetricsSnapshot metrics() const;
  /// Raw registry snapshot behind metrics(), with the cache/pool
  /// mirrors freshly synced — feed this to obs::to_prometheus_text /
  /// obs::to_json (the aapc_serviced --metrics-out path).
  obs::RegistrySnapshot metrics_snapshot() const;
  const ServiceOptions& options() const { return options_; }

  /// Message sizes are bucketed into power-of-two classes: class c
  /// covers (2^(c-1), 2^c] bytes and compiles at the representative
  /// size 2^c, so near-equal sizes share one cache entry. Class 0 is
  /// exactly 1 byte; the largest class is 62 (2^62 bytes — larger
  /// requests are rejected up front with InvalidArgument).
  static std::uint32_t size_class(Bytes msize);
  static Bytes size_class_bytes(std::uint32_t size_class);

  /// Recent compile latencies retained for retry_after_hint's median —
  /// a bounded ring, never the full service history (exposed, with the
  /// capacity, for the boundedness regression test).
  static constexpr std::size_t kLatencyReservoirCapacity = 256;
  std::size_t latency_reservoir_size() const;

  /// The cache key `compile` uses for a request (exposed for tests).
  /// The two-argument form keys an alltoall request; the full form
  /// takes the kind and the *canonical* normalized neighbor sets.
  CacheKey cache_key(const Canonicalization& canon, Bytes msize) const;
  CacheKey cache_key(const Canonicalization& canon, Bytes msize,
                     core::CollectiveKind kind,
                     const core::SparseNeighbors& canonical_neighbors) const;

  /// The topology-epoch feed driving cache invalidation. The front-end
  /// binds canonical hashes to physical links here and forwards link
  /// events; the service consults it on every request.
  TopologyEpochs& epochs() { return epochs_; }
  const TopologyEpochs& epochs() const { return epochs_; }

 private:
  CompiledEntryPtr compile_entry(const std::string& canonical_form,
                                 Bytes class_bytes,
                                 const TopologyEpochs::View& view,
                                 core::CollectiveKind kind,
                                 const core::SparseNeighbors& neighbors);
  /// Greedy-patched (rate-blind) repair of a stale entry, answered
  /// inline on a stale hit. Memoized per (key, invalidation epoch) in
  /// patched_ so concurrent stale hits do not recompute it.
  CompiledEntryPtr patch_stale_entry(const CacheKey& key,
                                     const CompiledEntryPtr& stale_entry,
                                     const TopologyEpochs::View& view);
  /// Enqueues one background weighted recompilation for `key` (no-op
  /// when one is already pending — in-flight coalescing for the
  /// revalidation path).
  void schedule_revalidation(const CacheKey& key,
                             const std::string& canonical_form,
                             Bytes class_bytes, std::uint64_t hash,
                             core::CollectiveKind kind,
                             const core::SparseNeighbors& neighbors);
  CompiledRoutine finish(const Canonicalization& canon, CompiledEntryPtr entry,
                         bool cache_hit, bool coalesced, std::uint64_t epoch,
                         std::chrono::steady_clock::time_point start) const;
  double retry_after_hint() const;
  void record_compile_latency(double seconds);
  /// Mirrors the cache/pool counters (owned by those components) into
  /// the registry so snapshots carry every service series.
  void sync_mirrors() const;

  ServiceOptions options_;
  std::uint32_t options_fingerprint_;
  ScheduleCache cache_;

  std::mutex in_flight_mutex_;
  std::unordered_map<CacheKey, std::shared_future<CompiledEntryPtr>,
                     CacheKeyHash>
      in_flight_;
  /// Keys with a pending background revalidation (guarded by
  /// in_flight_mutex_): at most one revalidation per key at a time.
  std::unordered_set<CacheKey, CacheKeyHash> revalidating_;
  /// Patched stale artifacts by key -> (invalidation epoch, entry),
  /// guarded by in_flight_mutex_. Erased when the revalidated entry
  /// lands in the cache, so the buffer is bounded by the number of
  /// simultaneously-stale keys.
  std::unordered_map<CacheKey, std::pair<std::uint64_t, CompiledEntryPtr>,
                     CacheKeyHash>
      patched_;

  /// Link-churn feed. Background revalidation tasks read it, so it is
  /// declared before pool_ (destroyed after the pool joins).
  TopologyEpochs epochs_;

  /// Source of truth for every aapc_service_* series. mutable: reads
  /// (metrics_snapshot) sync mirror series, which registers them on
  /// first use. Declared before the instrument references below and
  /// before pool_ (whose tasks record into the histogram).
  mutable obs::Registry registry_;
  /// aapc_service_requests_total{kind=...}, one series per collective
  /// kind, indexed by the kind's wire byte. Registered in the
  /// constructor body (the registry hands out stable references).
  std::array<obs::Counter*, 4> requests_{};
  obs::Counter& coalesced_waits_;
  obs::Counter& rejected_;
  obs::Counter& hash_collisions_;
  obs::Histogram& compile_seconds_;
  /// Per-stage compile-time breakdown (decompose -> assign -> sync ->
  /// lower) plus the size of the topology last compiled; exported with
  /// every snapshot so `aapc_serviced --metrics-out` shows where
  /// compilation time goes at each cluster size.
  obs::Histogram& stage_decompose_seconds_;
  obs::Histogram& stage_assign_seconds_;
  obs::Histogram& stage_sync_seconds_;
  obs::Histogram& stage_lower_seconds_;
  obs::Gauge& compile_ranks_;
  /// Churn / stale-while-revalidate instrumentation.
  obs::Counter& stale_hits_;
  obs::Counter& patches_;
  obs::Counter& revalidations_;
  obs::Counter& revalidation_failures_;
  obs::Histogram& patch_seconds_;
  obs::Histogram& revalidation_seconds_;

  /// Bounded ring of recent compile latencies (retry_after_hint's
  /// median). latency_ring_ holds at most kLatencyReservoirCapacity
  /// entries; latency_next_ is the overwrite cursor once full.
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;

  // Declared last on purpose: members are destroyed in reverse order,
  // and the pool's destructor drains and joins workers whose tasks
  // touch cache_, in_flight_, and the latency buffer above. The pool
  // must die first so no task outlives the members it uses.
  CompilerPool pool_;
};

}  // namespace aapc::service
