// Fixed-size compilation thread pool with a bounded submission queue.
//
// Schedule compilation is CPU-bound and seconds-scale at large cluster
// sizes, so the service runs it on a dedicated pool instead of the
// request threads. The queue is bounded: when every worker is busy and
// the queue is full, submit() throws PoolSaturated instead of letting
// the backlog grow without bound — the service layer translates that
// into a reject-with-retry-after response (backpressure contract, see
// docs/SERVICE.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "aapc/common/error.hpp"

namespace aapc::service {

/// Thrown by CompilerPool::submit when the bounded queue is full.
class PoolSaturated : public Error {
 public:
  explicit PoolSaturated(const std::string& what) : Error(what) {}
};

class CompilerPool {
 public:
  struct Stats {
    std::int64_t submitted = 0;
    std::int64_t executed = 0;
    std::int64_t rejected = 0;
    std::int64_t queue_depth = 0;       // current
    std::int64_t peak_queue_depth = 0;
    std::int64_t background_submitted = 0;
    std::int64_t background_executed = 0;
    std::int64_t background_rejected = 0;
    std::int64_t background_queue_depth = 0;  // current
  };

  /// Starts `threads` workers. At most `queue_capacity` foreground tasks
  /// may wait beyond the ones currently executing; the background lane
  /// holds at most `background_capacity` (< 0 reuses `queue_capacity`).
  CompilerPool(std::int32_t threads, std::int32_t queue_capacity,
               std::int32_t background_capacity = -1);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~CompilerPool();

  CompilerPool(const CompilerPool&) = delete;
  CompilerPool& operator=(const CompilerPool&) = delete;

  /// Enqueues `task` for execution on a worker thread. Tasks must not
  /// throw (wrap compilation in a promise and store exceptions there).
  /// Throws PoolSaturated when the queue is at capacity.
  void submit(std::function<void()> task);

  /// Enqueues `task` on the background lane: workers drain the
  /// foreground queue first, so background work (cache revalidation
  /// after topology churn) never delays a foreground miss, and a full
  /// background lane never consumes foreground queue capacity. Returns
  /// false (dropping the task) when the lane is full or the pool is
  /// shutting down — background work is best-effort by contract; the
  /// caller re-schedules on the next stale hit.
  bool try_submit_background(std::function<void()> task);

  /// Runs every task in `tasks` and returns when all have finished.
  /// The calling thread participates: it pulls tasks from a shared
  /// cursor alongside best-effort helper jobs submitted to the queue,
  /// so a full queue (or a pool of busy workers calling this from
  /// inside their own task) degrades to inline execution instead of
  /// deadlocking. Tasks must not throw. Shaped as the core::TaskRunner
  /// contract — the service installs this as the hierarchical
  /// scheduler's runner.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  Stats stats() const;
  std::int32_t thread_count() const {
    return static_cast<std::int32_t>(workers_.size());
  }

 private:
  void worker_loop();

  const std::size_t queue_capacity_;
  const std::size_t background_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  std::deque<std::function<void()>> background_queue_;
  bool shutting_down_ = false;
  std::int64_t submitted_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t peak_queue_depth_ = 0;
  std::int64_t background_submitted_ = 0;
  std::int64_t background_executed_ = 0;
  std::int64_t background_rejected_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace aapc::service
