// Fixed-size compilation thread pool with a bounded submission queue.
//
// Schedule compilation is CPU-bound and seconds-scale at large cluster
// sizes, so the service runs it on a dedicated pool instead of the
// request threads. The queue is bounded: when every worker is busy and
// the queue is full, submit() throws PoolSaturated instead of letting
// the backlog grow without bound — the service layer translates that
// into a reject-with-retry-after response (backpressure contract, see
// docs/SERVICE.md).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "aapc/common/error.hpp"

namespace aapc::service {

/// Thrown by CompilerPool::submit when the bounded queue is full.
class PoolSaturated : public Error {
 public:
  explicit PoolSaturated(const std::string& what) : Error(what) {}
};

class CompilerPool {
 public:
  struct Stats {
    std::int64_t submitted = 0;
    std::int64_t executed = 0;
    std::int64_t rejected = 0;
    std::int64_t queue_depth = 0;       // current
    std::int64_t peak_queue_depth = 0;
  };

  /// Starts `threads` workers. At most `queue_capacity` tasks may wait
  /// beyond the ones currently executing.
  CompilerPool(std::int32_t threads, std::int32_t queue_capacity);

  /// Drains nothing: pending tasks are completed, then workers join.
  ~CompilerPool();

  CompilerPool(const CompilerPool&) = delete;
  CompilerPool& operator=(const CompilerPool&) = delete;

  /// Enqueues `task` for execution on a worker thread. Tasks must not
  /// throw (wrap compilation in a promise and store exceptions there).
  /// Throws PoolSaturated when the queue is at capacity.
  void submit(std::function<void()> task);

  /// Runs every task in `tasks` and returns when all have finished.
  /// The calling thread participates: it pulls tasks from a shared
  /// cursor alongside best-effort helper jobs submitted to the queue,
  /// so a full queue (or a pool of busy workers calling this from
  /// inside their own task) degrades to inline execution instead of
  /// deadlocking. Tasks must not throw. Shaped as the core::TaskRunner
  /// contract — the service installs this as the hierarchical
  /// scheduler's runner.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  Stats stats() const;
  std::int32_t thread_count() const {
    return static_cast<std::int32_t>(workers_.size());
  }

 private:
  void worker_loop();

  const std::size_t queue_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::int64_t submitted_ = 0;
  std::int64_t executed_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t peak_queue_depth_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace aapc::service
