// Topology-epoch feed: live link churn for the serving path.
//
// The schedule cache keys entries by *canonical* topology identity, so a
// physical link event (degrade, failure, repair) must be translated into
// "which cached canonical artifacts does this invalidate, and at what
// rates should they be recompiled". TopologyEpochs is that translation
// layer:
//
//   - The front-end (netd) *binds* each canonical hash it serves to the
//     physical links the elected tree uses, carrying the link
//     permutation canonicalize() computes (link_to_canonical). This
//     builds a physical-link -> canonical-hash reverse index.
//   - A link event bumps a global epoch and stamps exactly the bound
//     hashes that use the link with that epoch (their invalidation
//     epoch). Hashes on untouched links are not stamped; their cache
//     entries survive verbatim.
//   - Invalidation is *lazy*: nothing is evicted here. The service
//     compares a cached entry's compile epoch against invalidated_at()
//     on every hit — an older entry is served stale-while-revalidate
//     (see service.hpp), so availability never drops on churn.
//
// Rates: every event records the link's residual rate (relative, 1.0 =
// nominal). bind() seeds a new binding from the current physical rates,
// so a hash bound *after* a degrade still sees the degraded world. The
// per-binding rate vector lives in canonical link ids — exactly the
// space the weighted scheduler (core/weighted.hpp) consumes.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aapc/core/weighted.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::service {

class TopologyEpochs {
 public:
  /// One physical link the bound topology forwards over, and where that
  /// link lands in the canonical labeling
  /// (Canonicalization::link_to_canonical composed with the caller's
  /// physical-to-topology link map).
  struct LinkBinding {
    std::int32_t physical_link = -1;
    topology::LinkId canonical_link = -1;
  };

  /// Atomic snapshot of one hash's churn state.
  struct View {
    /// Global epoch at snapshot time (stamped into responses).
    std::uint64_t epoch = 0;
    /// Epoch of the last event touching a link this hash is bound to;
    /// 0 = never invalidated. A cached entry is fresh iff its compile
    /// epoch is >= this.
    std::uint64_t invalidated_at = 0;
    /// Residual rates per canonical link, (0, 1]. Empty when the hash
    /// is unbound or every bound link is at nominal rate — callers then
    /// compile rate-blind.
    core::LinkRates rates;
  };

  struct EventResult {
    /// Epoch after this event's bump.
    std::uint64_t epoch = 0;
    /// Bound hashes whose artifacts this event invalidated (exact: one
    /// per bound hash using the link, zero for everything else).
    std::int64_t invalidated = 0;
  };

  struct Stats {
    std::uint64_t epoch = 0;
    std::int64_t link_events = 0;
    std::int64_t invalidations = 0;
    std::int64_t bound_topologies = 0;
  };

  /// Rates below this clamp (a "down" link still bound, e.g. between
  /// the event and the re-election that routes around it) so the
  /// weighted scheduler's positivity requirement holds.
  static constexpr double kMinRate = 1e-6;

  /// Declares that artifacts cached under `hash` route over `links`.
  /// `canonical_link_count` sizes the rate vector (the canonical
  /// topology's link count). Rebinding replaces the previous binding;
  /// rates are seeded from the current physical link factors.
  void bind(std::uint64_t hash, const std::vector<LinkBinding>& links,
            std::int32_t canonical_link_count);

  /// Drops `hash` from the feed (its entries become permanently fresh
  /// again only if never invalidated; the stamp survives unbinding).
  void unbind(std::uint64_t hash);

  /// A physical link changed rate: `factor` is the residual relative
  /// rate (1.0 restores nominal, 0 means down — clamped to kMinRate).
  /// Bumps the epoch and invalidates exactly the hashes bound to
  /// `physical_link`.
  EventResult link_event(std::int32_t physical_link, double factor);

  std::uint64_t epoch() const;
  /// 0 when `hash` was never invalidated.
  std::uint64_t invalidated_at(std::uint64_t hash) const;
  View view(std::uint64_t hash) const;
  Stats stats() const;

 private:
  struct Binding {
    std::vector<LinkBinding> links;
    core::LinkRates rates;  // canonical link space
    bool degraded = false;  // any rate below nominal
  };

  mutable std::mutex mutex_;
  std::uint64_t epoch_ = 0;
  std::int64_t link_events_ = 0;
  std::int64_t invalidations_ = 0;
  /// Current residual factor per physical link; absent = nominal.
  std::unordered_map<std::int32_t, double> link_factor_;
  std::unordered_map<std::uint64_t, Binding> bindings_;
  /// Last event epoch per hash — kept outside bindings_ so the stamp
  /// survives a re-election's unbind/rebind cycle.
  std::unordered_map<std::uint64_t, std::uint64_t> invalidated_;
  /// physical link -> hashes bound over it (the reverse index).
  std::unordered_map<std::int32_t, std::unordered_set<std::uint64_t>> reverse_;
};

}  // namespace aapc::service
