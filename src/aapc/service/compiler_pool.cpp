#include "aapc/service/compiler_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

namespace aapc::service {

CompilerPool::CompilerPool(std::int32_t threads, std::int32_t queue_capacity,
                           std::int32_t background_capacity)
    : queue_capacity_(static_cast<std::size_t>(std::max(queue_capacity, 1))),
      background_capacity_(static_cast<std::size_t>(
          background_capacity < 0 ? std::max(queue_capacity, 1)
                                  : std::max(background_capacity, 1))) {
  AAPC_REQUIRE(threads >= 1, "compiler pool needs >= 1 thread");
  AAPC_REQUIRE(queue_capacity >= 1, "compiler pool queue capacity must be >= 1");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (std::int32_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CompilerPool::~CompilerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void CompilerPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    AAPC_REQUIRE(!shutting_down_, "compiler pool is shutting down");
    if (queue_.size() >= queue_capacity_) {
      ++rejected_;
      throw PoolSaturated("compiler pool saturated: " +
                          std::to_string(queue_.size()) +
                          " task(s) queued (capacity " +
                          std::to_string(queue_capacity_) + ")");
    }
    queue_.push_back(std::move(task));
    ++submitted_;
    peak_queue_depth_ = std::max(
        peak_queue_depth_, static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

bool CompilerPool::try_submit_background(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_ || background_queue_.size() >= background_capacity_) {
      ++background_rejected_;
      return false;
    }
    background_queue_.push_back(std::move(task));
    ++background_submitted_;
  }
  work_available_.notify_one();
  return true;
}

void CompilerPool::run_tasks(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (tasks.size() == 1) {
    tasks[0]();
    return;
  }
  // Shared between the caller and its helper jobs. Helpers may outlive
  // the call (a straggler that finds the cursor exhausted), so the state
  // they touch after the last task completes lives behind a shared_ptr
  // and never dereferences the caller's vector: `data` is only read for
  // indices below `n`, and a task at index i keeps `done < n` until it
  // returns, which keeps the caller (and the vector) alive.
  struct Shared {
    const std::function<void()>* data;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto shared = std::make_shared<Shared>();
  shared->data = tasks.data();
  shared->n = tasks.size();
  auto drain = [shared] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= shared->n) return;
      shared->data[i]();
      if (shared->done.fetch_add(1) + 1 == shared->n) {
        const std::lock_guard<std::mutex> lock(shared->mutex);
        shared->all_done.notify_all();
      }
    }
  };
  // Helpers are best-effort parallelism: a saturated (or shutting-down)
  // queue just means the caller drains more of the batch itself.
  const auto helpers = std::min<std::size_t>(workers_.size(),
                                             tasks.size() - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    try {
      submit(drain);
    } catch (const Error&) {
      break;
    }
  }
  drain();
  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->all_done.wait(
      lock, [&shared] { return shared->done.load() >= shared->n; });
}

void CompilerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    bool background = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] {
        return shutting_down_ || !queue_.empty() || !background_queue_.empty();
      });
      // Strict priority: the background lane is only consulted when the
      // foreground queue is empty.
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (!background_queue_.empty()) {
        task = std::move(background_queue_.front());
        background_queue_.pop_front();
        background = true;
      } else {
        return;  // shutting down with nothing pending
      }
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (background) {
        ++background_executed_;
      } else {
        ++executed_;
      }
    }
  }
}

CompilerPool::Stats CompilerPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.executed = executed_;
  stats.rejected = rejected_;
  stats.queue_depth = static_cast<std::int64_t>(queue_.size());
  stats.peak_queue_depth = peak_queue_depth_;
  stats.background_submitted = background_submitted_;
  stats.background_executed = background_executed_;
  stats.background_rejected = background_rejected_;
  stats.background_queue_depth =
      static_cast<std::int64_t>(background_queue_.size());
  return stats;
}

}  // namespace aapc::service
