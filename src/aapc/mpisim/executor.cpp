#include "aapc/mpisim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>

#include "aapc/common/error.hpp"
#include "aapc/common/log.hpp"
#include "aapc/common/rng.hpp"
#include "aapc/flight/recorder.hpp"
#include "aapc/mpisim/network_backend.hpp"
#include "aapc/obs/metrics.hpp"
#include "aapc/packetsim/metrics.hpp"
#include "aapc/simnet/metrics.hpp"

namespace aapc::mpisim {

namespace {

enum class RankState : std::uint8_t {
  kRunnable,
  kWait,      // blocked on one request
  kWaitAll,   // blocked on all requests posted so far
  kBarrier,   // arrived at a barrier
  kDone,
  kCrashed,   // crash-stop fault: never executes another op
};

const char* state_name(RankState state) {
  switch (state) {
    case RankState::kRunnable: return "runnable";
    case RankState::kWait: return "wait";
    case RankState::kWaitAll: return "waitall";
    case RankState::kBarrier: return "barrier";
    case RankState::kDone: return "done";
    case RankState::kCrashed: return "crashed";
  }
  return "?";
}

struct Request {
  bool is_send = false;
  Rank peer = -1;
  Bytes bytes = 0;
  Tag tag = 0;
  SimTime post_ready = 0;  // rank clock when the post finished
  bool matched = false;
  bool complete = false;
  SimTime completion = 0;
};

struct RankCtx {
  std::size_t pc = 0;
  SimTime clock = 0;
  RankState state = RankState::kRunnable;
  RequestId wait_target = -1;  // for kWait
  std::vector<Request> requests;
};

/// Key for matching: (sender rank, receiver rank, tag).
using MatchKey = std::tuple<Rank, Rank, Tag>;

struct MatchKeyHash {
  std::size_t operator()(const MatchKey& key) const noexcept {
    // Ranks are small nonnegative ints and tags fit 32 bits: pack into
    // one word and finish with a 64-bit mix (splitmix64 finalizer).
    std::uint64_t h =
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(std::get<0>(key)))
         << 42) ^
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(std::get<1>(key)))
         << 21) ^
        static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(std::get<2>(key)));
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

struct FlowIdHash {
  std::size_t operator()(simnet::FlowId id) const noexcept {
    auto h = static_cast<std::uint64_t>(id);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

struct PendingPost {
  Rank rank;        // posting rank
  RequestId request;
};

/// FIFO of unmatched posts per match key. A vector plus head index
/// beats std::deque here: posts per key are few (usually one), and a
/// deque burns a chunk allocation per key.
struct PostFifo {
  std::vector<PendingPost> posts;
  std::size_t head = 0;
  bool empty() const { return head >= posts.size(); }
  std::size_t size() const { return posts.size() - head; }
  const PendingPost& front() const { return posts[head]; }
  void pop_front() { ++head; }
  void push_back(PendingPost post) { posts.push_back(post); }
};

struct FlowBinding {
  Rank send_rank;
  RequestId send_request;
  Rank recv_rank;
  RequestId recv_request;
  std::int64_t trace_index = -1;
  /// Watchdog reposts already performed for this transfer.
  std::int32_t attempts = 0;
  /// Integrity-ledger entry stamped when the transfer matched.
  DeliveryLedger::EntryId ledger_entry = -1;
  /// Flow activation time of this attempt (metrics: per-transfer
  /// duration).
  SimTime start = 0;
};

}  // namespace

Executor::Executor(const topology::Topology& topo,
                   const simnet::NetworkParams& net,
                   const ExecutorParams& exec)
    : topo_(topo), net_params_(net), exec_params_(exec) {
  AAPC_REQUIRE(topo.finalized(), "topology must be finalized");
  AAPC_REQUIRE(exec.memcpy_bandwidth_bytes_per_sec > 0, "memcpy bw <= 0");
}

ExecutionResult Executor::run(const ProgramSet& set) {
  const std::int32_t ranks = topo_.machine_count();
  AAPC_REQUIRE(set.rank_count() == ranks,
               "program set '" << set.name << "' has " << set.rank_count()
                               << " programs for " << ranks << " machines");

  // The network model behind the backend seam: fluid (default,
  // bit-identical to the pre-seam executor) or segment-level packet.
  std::unique_ptr<NetworkBackend> backend;
  if (exec_params_.backend == NetworkBackendKind::kPacket) {
    backend = std::make_unique<PacketBackend>(topo_, exec_params_.packet);
  } else {
    backend = std::make_unique<FluidBackend>(topo_, net_params_);
  }
  NetworkBackend& network = *backend;
  // Scripted link faults become ordinary network events up front (the
  // packet backend rejects them — it models faults via packet.faults).
  for (const simnet::LinkCapacityEvent& event : exec_params_.capacity_events) {
    network.schedule_capacity_change(event.when, event.link,
                                     event.bandwidth_bytes_per_sec);
  }
  // Exactly-once audit of every matched transfer (pure bookkeeping:
  // never influences simulated time).
  DeliveryLedger ledger;
  std::vector<RankCtx> ctx(static_cast<std::size_t>(ranks));
  for (Rank r = 0; r < ranks; ++r) {
    ctx[static_cast<std::size_t>(r)].requests.reserve(
        set.programs[static_cast<std::size_t>(r)].ops.size());
  }
  // Deterministic per-rank OS-noise streams (see ExecutorParams).
  std::vector<Rng> jitter;
  jitter.reserve(static_cast<std::size_t>(ranks));
  for (Rank r = 0; r < ranks; ++r) {
    jitter.emplace_back(exec_params_.jitter_seed +
                        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(r + 1));
  }
  // Per-rank fault state (inert defaults: factor exactly 1.0 and an
  // infinite crash time leave the arithmetic bit-identical to a
  // fault-free run).
  std::vector<double> cpu_slowdown(static_cast<std::size_t>(ranks), 1.0);
  std::vector<SimTime> slowdown_onset(static_cast<std::size_t>(ranks), 0.0);
  std::vector<SimTime> crash_time(static_cast<std::size_t>(ranks),
                                  simnet::kNever);
  for (const RankFault& fault : exec_params_.rank_faults) {
    AAPC_REQUIRE(fault.rank >= 0 && fault.rank < ranks,
                 "rank fault for nonexistent rank " << fault.rank);
    AAPC_REQUIRE(fault.cpu_slowdown >= 1.0,
                 "cpu_slowdown must be >= 1, got " << fault.cpu_slowdown);
    const auto idx = static_cast<std::size_t>(fault.rank);
    cpu_slowdown[idx] = fault.cpu_slowdown;
    slowdown_onset[idx] = fault.slowdown_onset;
    crash_time[idx] = std::min(crash_time[idx], fault.crash_time);
  }
  // Multiplier on rank r's CPU-time costs at local time t.
  auto cpu_factor = [&](Rank r, SimTime t) -> double {
    const auto idx = static_cast<std::size_t>(r);
    return t >= slowdown_onset[idx] ? cpu_slowdown[idx] : 1.0;
  };
  auto wakeup_jitter = [&](Rank r) -> SimTime {
    const SimTime base =
        exec_params_.wakeup_jitter_max > 0
            ? jitter[static_cast<std::size_t>(r)].next_double() *
                  exec_params_.wakeup_jitter_max
            : 0.0;
    return base * cpu_factor(r, ctx[static_cast<std::size_t>(r)].clock);
  };
  std::unordered_map<MatchKey, PostFifo, MatchKeyHash> unmatched_sends;
  std::unordered_map<MatchKey, PostFifo, MatchKeyHash> unmatched_recvs;
  std::unordered_map<simnet::FlowId, FlowBinding, FlowIdHash> flow_bindings;
  unmatched_sends.reserve(static_cast<std::size_t>(2 * ranks));
  unmatched_recvs.reserve(static_cast<std::size_t>(2 * ranks));
  flow_bindings.reserve(static_cast<std::size_t>(2 * ranks));
  std::int32_t barrier_arrivals = 0;
  std::int32_t done_count = 0;

  ExecutionResult result;
  result.rank_finish.assign(static_cast<std::size_t>(ranks), 0);
  result.fault_markers = exec_params_.fault_markers;

  // Pre-resolved metric handles: registration is mutex-guarded, so do
  // it once up front — the event loop then records through relaxed
  // atomics only. With metrics == nullptr the loop stays on the
  // metrics-free path.
  obs::Registry* const metrics = exec_params_.metrics;
  // Flight recorder (nullptr = the bit-identical recorder-free path).
  // Recording is pure observation — a handful of relaxed stores per
  // event — and never touches simulated state or the jitter streams.
  flight::Recorder* const flight = exec_params_.flight;
  if (flight != nullptr) {
    AAPC_REQUIRE(flight->rank_count() >= ranks,
                 "flight recorder covers " << flight->rank_count()
                                           << " ranks but the topology has "
                                           << ranks << " machines");
  }
  obs::Histogram* transfer_seconds = nullptr;
  obs::Histogram* sync_wait_seconds = nullptr;
  std::int64_t sync_message_count = 0;
  if (metrics != nullptr) {
    transfer_seconds = &metrics->histogram(
        "aapc_executor_transfer_seconds",
        "Drain time of one transfer attempt (flow activation to drain)");
    sync_wait_seconds = &metrics->histogram(
        "aapc_executor_sync_wait_seconds",
        "Time sync-token receivers spent blocked past their post");
  }

  // Transfer watchdog: min-heap of (deadline, flow) over in-flight
  // transfers, only populated when the watchdog is enabled. Entries of
  // flows that drained are skipped lazily.
  std::vector<std::pair<SimTime, simnet::FlowId>> watchdog;
  constexpr auto kWatchdogOrder =
      std::greater<std::pair<SimTime, simnet::FlowId>>{};

  // Registers the network flow of a matched transfer starting at
  // `start` and (re)binds it to the request pair. Used for the initial
  // rendezvous and for watchdog reposts.
  auto post_flow = [&](Rank send_rank, RequestId send_req, Rank recv_rank,
                       RequestId recv_req, SimTime start,
                       std::int64_t trace_index, std::int32_t attempts,
                       DeliveryLedger::EntryId ledger_entry) {
    const Bytes bytes = ctx[static_cast<std::size_t>(send_rank)]
                            .requests[static_cast<std::size_t>(send_req)]
                            .bytes;
    const simnet::FlowId flow =
        network.add_flow(topo_.machine_node(send_rank),
                         topo_.machine_node(recv_rank), bytes, start);
    flow_bindings.emplace(flow,
                          FlowBinding{send_rank, send_req, recv_rank,
                                      recv_req, trace_index, attempts,
                                      ledger_entry, start});
    if (exec_params_.transfer_timeout > 0) {
      watchdog.emplace_back(start + exec_params_.transfer_timeout, flow);
      std::push_heap(watchdog.begin(), watchdog.end(), kWatchdogOrder);
    }
  };

  auto make_flow = [&](Rank send_rank, RequestId send_req, Rank recv_rank,
                       RequestId recv_req) {
    Request& send = ctx[send_rank].requests[send_req];
    Request& recv = ctx[recv_rank].requests[recv_req];
    AAPC_CHECK(send.bytes == recv.bytes);
    send.matched = true;
    recv.matched = true;
    const SimTime start = std::max(send.post_ready, recv.post_ready);
    std::int64_t trace_index = -1;
    if (exec_params_.record_trace) {
      trace_index = static_cast<std::int64_t>(result.trace.size());
      result.trace.push_back(MessageTrace{
          send_rank, recv_rank, send.bytes, send.tag, start, 0, 0,
          send.tag >= kSyncTag});
    }
    // Stamp the transfer with the sender's view; the delivery check
    // recomputes the fingerprint from the receiver's view.
    const DeliveryLedger::EntryId entry =
        ledger.record_send(send_rank, recv_rank, send.tag, send.bytes);
    post_flow(send_rank, send_req, recv_rank, recv_req, start, trace_index,
              0, entry);
    result.network_bytes += static_cast<double>(send.bytes);
    ++result.message_count;
    if (send.tag >= kSyncTag) ++sync_message_count;
  };

  auto request_complete = [&](const RankCtx& rank_ctx, RequestId id) {
    return rank_ctx.requests[static_cast<std::size_t>(id)].complete;
  };

  // Executes ops of rank r until it blocks or finishes. Returns true if
  // any op executed (progress).
  auto step_rank = [&](Rank r) -> bool {
    RankCtx& c = ctx[static_cast<std::size_t>(r)];
    bool progressed = false;
    while (true) {
      // Re-check blocking conditions.
      if (c.state == RankState::kDone || c.state == RankState::kBarrier ||
          c.state == RankState::kCrashed) {
        return progressed;
      }
      if (c.state == RankState::kWait) {
        const Request& req =
            c.requests[static_cast<std::size_t>(c.wait_target)];
        if (!req.complete) return progressed;
        c.clock = std::max(c.clock, req.completion) + wakeup_jitter(r);
        c.state = RankState::kRunnable;
        progressed = true;
      }
      if (c.state == RankState::kWaitAll) {
        SimTime latest = c.clock;
        for (const Request& req : c.requests) {
          if (!req.complete) return progressed;
          latest = std::max(latest, req.completion);
        }
        c.clock = latest + wakeup_jitter(r);
        c.state = RankState::kRunnable;
        progressed = true;
      }
      // Crash-stop: once the rank's local clock reaches its crash time
      // it never executes another op (fail-stop; no failure detection).
      if (c.clock >= crash_time[static_cast<std::size_t>(r)]) {
        c.state = RankState::kCrashed;
        return true;
      }
      const Program& program = set.programs[static_cast<std::size_t>(r)];
      if (c.pc >= program.ops.size()) {
        c.state = RankState::kDone;
        result.rank_finish[static_cast<std::size_t>(r)] = c.clock;
        ++done_count;
        return true;
      }
      const Op& op = program.ops[c.pc];
      switch (op.kind) {
        case OpKind::kIsend: {
          AAPC_REQUIRE(op.peer >= 0 && op.peer < ranks && op.peer != r,
                       "rank " << r << ": bad isend peer " << op.peer);
          const SimTime post_begin = c.clock;
          c.clock += net_params_.send_overhead * cpu_factor(r, c.clock);
          const auto id = static_cast<RequestId>(c.requests.size());
          c.requests.push_back(Request{true, op.peer, op.bytes, op.tag,
                                       c.clock, false, false, 0});
          if (flight != nullptr) {
            flight->record(r, flight::EventKind::kSendPost, op.peer, op.tag,
                           op.bytes, c.clock, post_begin);
          }
          const MatchKey key{r, op.peer, op.tag};
          auto& recvs = unmatched_recvs[key];
          if (!recvs.empty()) {
            const PendingPost recv = recvs.front();
            recvs.pop_front();
            make_flow(r, id, recv.rank, recv.request);
          } else {
            unmatched_sends[key].push_back(PendingPost{r, id});
          }
          ++c.pc;
          break;
        }
        case OpKind::kIrecv: {
          AAPC_REQUIRE(op.peer >= 0 && op.peer < ranks && op.peer != r,
                       "rank " << r << ": bad irecv peer " << op.peer);
          const SimTime post_begin = c.clock;
          c.clock += net_params_.recv_overhead * cpu_factor(r, c.clock);
          const auto id = static_cast<RequestId>(c.requests.size());
          c.requests.push_back(Request{false, op.peer, op.bytes, op.tag,
                                       c.clock, false, false, 0});
          if (flight != nullptr) {
            flight->record(r, flight::EventKind::kRecvPost, op.peer, op.tag,
                           op.bytes, c.clock, post_begin);
          }
          const MatchKey key{op.peer, r, op.tag};
          auto& sends = unmatched_sends[key];
          if (!sends.empty()) {
            const PendingPost send = sends.front();
            sends.pop_front();
            make_flow(send.rank, send.request, r, id);
          } else {
            unmatched_recvs[key].push_back(PendingPost{r, id});
          }
          ++c.pc;
          break;
        }
        case OpKind::kWait: {
          AAPC_REQUIRE(op.request >= 0 &&
                           op.request <
                               static_cast<RequestId>(c.requests.size()),
                       "rank " << r << ": wait on unposted request "
                               << op.request);
          ++c.pc;
          if (request_complete(c, op.request)) {
            c.clock = std::max(
                c.clock,
                c.requests[static_cast<std::size_t>(op.request)].completion);
          } else {
            c.state = RankState::kWait;
            c.wait_target = op.request;
            if (flight != nullptr) {
              const Request& req =
                  c.requests[static_cast<std::size_t>(op.request)];
              if (!req.is_send && req.tag >= kSyncTag) {
                flight->record(r, flight::EventKind::kSyncWait, req.peer,
                               req.tag, req.bytes, c.clock, req.post_ready);
              }
            }
          }
          break;
        }
        case OpKind::kWaitAll: {
          ++c.pc;
          c.state = RankState::kWaitAll;
          break;  // the loop head resolves it (possibly immediately)
        }
        case OpKind::kBarrier: {
          ++c.pc;
          c.state = RankState::kBarrier;
          ++barrier_arrivals;
          break;
        }
        case OpKind::kCopy: {
          c.clock += static_cast<double>(op.bytes) /
                     exec_params_.memcpy_bandwidth_bytes_per_sec *
                     cpu_factor(r, c.clock);
          ++c.pc;
          break;
        }
      }
      progressed = true;
    }
  };

  // Wakes every barrier-blocked rank (appending to `woken`) once all
  // live ranks have arrived.
  auto release_barrier_if_ready = [&](std::vector<Rank>& woken) -> bool {
    if (barrier_arrivals < ranks - done_count || barrier_arrivals == 0) {
      return false;
    }
    // All live ranks arrived. (Programs must all contain the barrier;
    // done ranks having exited earlier would be a malformed program set
    // that shows up as a deadlock below.)
    SimTime latest = 0;
    for (const RankCtx& c : ctx) {
      if (c.state == RankState::kBarrier) latest = std::max(latest, c.clock);
    }
    const SimTime release = latest + net_params_.barrier_latency;
    for (Rank r = 0; r < ranks; ++r) {
      RankCtx& c = ctx[static_cast<std::size_t>(r)];
      if (c.state == RankState::kBarrier) {
        c.clock = release + wakeup_jitter(r);
        c.state = RankState::kRunnable;
        woken.push_back(r);
      }
    }
    barrier_arrivals = 0;
    return true;
  };

  // Runnable-rank scheduling: a rank is stepped only when something can
  // have unblocked it — initially, after a barrier release, or when one
  // of its requests completes. Stepping one rank can never unblock
  // another mid-wave (request completion happens only in advance_to and
  // barrier release only between waves), so each wave's membership is
  // fixed up front; processing waves in ascending rank order makes the
  // schedule identical to the seed's step-every-rank polling loop.
  std::vector<Rank> wave;
  std::vector<char> queued(static_cast<std::size_t>(ranks), 0);
  wave.reserve(static_cast<std::size_t>(ranks));
  for (Rank r = 0; r < ranks; ++r) wave.push_back(r);
  auto enqueue = [&](Rank r) {
    if (!queued[static_cast<std::size_t>(r)]) {
      queued[static_cast<std::size_t>(r)] = 1;
      wave.push_back(r);
    }
  };

  std::vector<simnet::FlowId> completed;
  while (done_count < ranks) {
    // 1. Let every runnable rank run as far as it can (rank order).
    for (const Rank r : wave) {
      queued[static_cast<std::size_t>(r)] = 0;
      step_rank(r);
    }
    wave.clear();
    if (done_count >= ranks) break;
    // 2. Barrier release?
    if (release_barrier_if_ready(wave)) continue;
    // 3. Advance the network to its next event (or the watchdog's next
    // deadline); its completions decide the next wave. Watchdog entries
    // of already-drained flows are pruned first so a stale deadline
    // cannot mask a genuine stall.
    while (!watchdog.empty() && flow_bindings.find(watchdog.front().second) ==
                                    flow_bindings.end()) {
      std::pop_heap(watchdog.begin(), watchdog.end(), kWatchdogOrder);
      watchdog.pop_back();
    }
    SimTime next = network.next_event_time();
    if (!watchdog.empty()) {
      next = std::min(next, watchdog.front().first);
    }
    if (next == simnet::kNever) {
      // Every live rank is blocked and no event can unblock any of
      // them: plain deadlock (mismatched posts), a crashed rank, or
      // transfers stuck behind a down link with the watchdog disabled.
      // Build the typed diagnostic (shared with flight::analyze, so
      // stall reports and analyzer verdicts spell transfers the same
      // way); its to_string() is the exception message.
      flight::StallDiagnostic diag;
      diag.program_set = set.name;
      for (Rank r = 0; r < ranks; ++r) {
        const RankCtx& c = ctx[static_cast<std::size_t>(r)];
        if (c.state == RankState::kDone) continue;
        flight::BlockedRank blocked;
        blocked.rank = r;
        blocked.state = state_name(c.state);
        blocked.pc = static_cast<std::int64_t>(c.pc);
        blocked.program_size = static_cast<std::int64_t>(
            set.programs[static_cast<std::size_t>(r)].ops.size());
        blocked.clock = c.clock;
        for (const Request& req : c.requests) {
          if (req.complete) continue;
          ++blocked.pending_total;
          if (blocked.pending.size() >= 8) continue;
          blocked.pending.push_back(flight::PendingRequest{
              req.is_send, req.peer, req.tag,
              static_cast<std::int64_t>(req.bytes), req.matched});
        }
        diag.blocked.push_back(std::move(blocked));
      }
      // Sort numerically by (sender, receiver, tag) — not by rendered
      // string — so "rank 2" precedes "rank 10" and the diagnostic is
      // byte-stable regardless of hash-map iteration order.
      for (const auto& [flow, binding] : flow_bindings) {
        if (network.flow_rate(flow) == 0 && network.flow_remaining(flow) > 0) {
          const Request& send =
              ctx[static_cast<std::size_t>(binding.send_rank)]
                  .requests[static_cast<std::size_t>(binding.send_request)];
          diag.stuck.push_back(flight::StuckTransfer{
              binding.send_rank, binding.recv_rank, send.tag,
              static_cast<std::int64_t>(send.bytes),
              network.flow_remaining(flow)});
        }
      }
      std::sort(diag.stuck.begin(), diag.stuck.end(),
                [](const flight::StuckTransfer& a,
                   const flight::StuckTransfer& b) {
                  return std::tie(a.src, a.dst, a.tag) <
                         std::tie(b.src, b.dst, b.tag);
                });
      throw ExecutionStalled(std::move(diag));
    }
    completed.clear();
    network.advance_to(next, completed);
    for (const simnet::FlowId flow : completed) {
      const auto it = flow_bindings.find(flow);
      AAPC_CHECK(it != flow_bindings.end());
      const FlowBinding& binding = it->second;
      const SimTime drained = network.now();
      Request& send = ctx[static_cast<std::size_t>(binding.send_rank)]
                          .requests[static_cast<std::size_t>(
                              binding.send_request)];
      Request& recv = ctx[static_cast<std::size_t>(binding.recv_rank)]
                          .requests[static_cast<std::size_t>(
                              binding.recv_request)];
      send.complete = true;
      send.completion = drained;
      recv.complete = true;
      recv.completion = drained + network.extra_delivery_latency(flow);
      if (recv.bytes <= net_params_.small_message_threshold) {
        recv.completion += net_params_.small_message_extra_latency;
      }
      // Delivery audit, from the *receiver's* request fields: a flow
      // bound to the wrong request pair fingerprints differently.
      ledger.record_delivery(binding.ledger_entry, recv.peer,
                             binding.recv_rank, recv.tag, recv.bytes);
      if (binding.trace_index >= 0) {
        MessageTrace& record =
            result.trace[static_cast<std::size_t>(binding.trace_index)];
        record.end = drained;
        record.delivered = recv.completion;
      }
      if (transfer_seconds != nullptr) {
        transfer_seconds->observe(drained - binding.start);
        if (recv.tag >= kSyncTag) {
          sync_wait_seconds->observe(
              std::max(0.0, drained - recv.post_ready));
        }
      }
      if (flight != nullptr) {
        flight->record(binding.send_rank, flight::EventKind::kSendComplete,
                       binding.recv_rank, send.tag, send.bytes, drained,
                       binding.start);
        flight->record(binding.recv_rank,
                       recv.tag >= kSyncTag
                           ? flight::EventKind::kSyncRelease
                           : flight::EventKind::kRecvComplete,
                       recv.peer, recv.tag, recv.bytes, recv.completion,
                       recv.post_ready);
      }
      enqueue(binding.send_rank);
      enqueue(binding.recv_rank);
      flow_bindings.erase(it);
    }
    // 4. Watchdog deadlines due now (completions at the same instant
    // won above and already unbound their flows): cancel each stuck
    // flow and repost it with exponential backoff, or abort the run
    // once its retries are exhausted.
    while (!watchdog.empty() && watchdog.front().first <= network.now()) {
      const simnet::FlowId flow = watchdog.front().second;
      std::pop_heap(watchdog.begin(), watchdog.end(), kWatchdogOrder);
      watchdog.pop_back();
      const auto it = flow_bindings.find(flow);
      if (it == flow_bindings.end()) continue;  // drained before deadline
      const FlowBinding binding = it->second;
      const Request& send = ctx[static_cast<std::size_t>(binding.send_rank)]
                                .requests[static_cast<std::size_t>(
                                    binding.send_request)];
      ++result.transfer_timeouts;
      if (binding.attempts >= exec_params_.transfer_max_retries) {
        flight::AbortDiagnostic diag;
        diag.transfer = flight::StuckTransfer{
            binding.send_rank, binding.recv_rank, send.tag,
            static_cast<std::int64_t>(send.bytes),
            network.flow_remaining(flow)};
        diag.attempts = binding.attempts + 1;
        diag.timeout = exec_params_.transfer_timeout;
        throw TransferAborted(std::move(diag));
      }
      network.cancel_flow(flow);
      flow_bindings.erase(it);
      const SimTime backoff =
          exec_params_.transfer_retry_backoff *
          std::pow(exec_params_.transfer_backoff_multiplier,
                   binding.attempts);
      ++result.transfer_retries;
      if (binding.trace_index >= 0) {
        ++result.trace[static_cast<std::size_t>(binding.trace_index)].retries;
      }
      std::ostringstream label;
      label << "retry " << (binding.attempts + 1) << "/"
            << exec_params_.transfer_max_retries << ": rank "
            << binding.send_rank << " -> rank " << binding.recv_rank
            << " tag=" << send.tag;
      result.fault_markers.push_back(FaultMarker{network.now(), label.str()});
      if (flight != nullptr) {
        flight->record(binding.send_rank, flight::EventKind::kWatchdogRetry,
                       binding.recv_rank, send.tag, send.bytes,
                       network.now(), binding.start);
      }
      ledger.record_retry(binding.ledger_entry);
      post_flow(binding.send_rank, binding.send_request, binding.recv_rank,
                binding.recv_request, network.now() + backoff,
                binding.trace_index, binding.attempts + 1,
                binding.ledger_entry);
    }
    std::sort(wave.begin(), wave.end());
  }

  // Leftover unmatched posts indicate a malformed algorithm. Collect
  // every leftover across both maps and sort by (sender, receiver, tag)
  // before reporting, so the error message names the same posts in the
  // same order on every run (hash-map iteration order must not leak).
  {
    struct Unmatched {
      MatchKey key;
      bool is_send;
      std::size_t count;
    };
    std::vector<Unmatched> leftovers;
    for (const auto& [key, queue] : unmatched_sends) {
      if (!queue.empty()) leftovers.push_back({key, true, queue.size()});
    }
    for (const auto& [key, queue] : unmatched_recvs) {
      if (!queue.empty()) leftovers.push_back({key, false, queue.size()});
    }
    if (!leftovers.empty()) {
      std::sort(leftovers.begin(), leftovers.end(),
                [](const Unmatched& a, const Unmatched& b) {
                  return std::tie(a.key, a.is_send) < std::tie(b.key, b.is_send);
                });
      std::ostringstream os;
      os << "program set '" << set.name << "' finished with unmatched posts:";
      std::size_t listed = 0;
      for (const Unmatched& u : leftovers) {
        if (listed >= 8) {
          os << "\n  ... " << (leftovers.size() - listed) << " more";
          break;
        }
        ++listed;
        os << "\n  " << u.count << " unmatched "
           << (u.is_send ? "send(s)" : "recv(s)") << " rank "
           << std::get<0>(u.key) << " -> rank " << std::get<1>(u.key)
           << " tag=" << std::get<2>(u.key);
      }
      throw InvalidArgument(os.str());
    }
  }

  result.completion_time =
      *std::max_element(result.rank_finish.begin(), result.rank_finish.end());
  network.finish(result);
  result.integrity = ledger.report();
  AAPC_CHECK_MSG(result.integrity.ok(), "execution of program set '"
                                            << set.name << "' violated "
                                            << "data integrity — "
                                            << result.integrity.summary());
  // Params-supplied markers and watchdog markers in one time-sorted
  // timeline (stable: registration order among equal times).
  std::stable_sort(result.fault_markers.begin(), result.fault_markers.end(),
                   [](const FaultMarker& a, const FaultMarker& b) {
                     return a.time < b.time;
                   });
  if (metrics != nullptr) {
    if (flight != nullptr) flight->publish_metrics(*metrics);
    metrics->counter("aapc_executor_runs_total", "Program-set executions")
        .inc();
    const char* messages_help =
        "Matched point-to-point transfers, by kind (data payload vs "
        "pair-wise synchronization tokens)";
    metrics
        ->counter("aapc_executor_messages_total", messages_help,
                  {{"kind", "data"}})
        .inc(result.message_count - sync_message_count);
    metrics
        ->counter("aapc_executor_messages_total", messages_help,
                  {{"kind", "sync"}})
        .inc(sync_message_count);
    metrics
        ->counter("aapc_executor_transfer_timeouts_total",
                  "Transfers the watchdog timed out")
        .inc(result.transfer_timeouts);
    metrics
        ->counter("aapc_executor_transfer_retries_total",
                  "Watchdog reposts after a timeout")
        .inc(result.transfer_retries);
    metrics
        ->histogram("aapc_executor_run_seconds",
                    "Completion time of one program-set execution")
        .observe(result.completion_time);
    // The network model's own series, from whichever backend ran.
    if (result.packet.used) {
      packetsim::PacketResult packet;
      packet.segments_sent = result.packet.segments_sent;
      packet.segments_dropped = result.packet.segments_dropped;
      packet.retransmissions = result.packet.retransmissions;
      packet.segments_lost = result.packet.segments_lost;
      packet.segments_corrupted = result.packet.segments_corrupted;
      packet.peak_queue_occupancy = result.packet.peak_queue_occupancy;
      packet.goodput_bytes_per_sec =
          result.completion_time > 0
              ? result.network_bytes / result.completion_time
              : 0.0;
      packetsim::publish_packet_result(*metrics, packet);
    } else {
      simnet::publish_network_stats(*metrics, result.network_stats,
                                    result.completion_time);
    }
  }
  return result;
}

}  // namespace aapc::mpisim
