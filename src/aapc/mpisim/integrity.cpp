#include "aapc/mpisim/integrity.hpp"

#include <sstream>

#include "aapc/common/error.hpp"

namespace aapc::mpisim {

namespace {

std::uint64_t mix64(std::uint64_t h) {
  // splitmix64 finalizer: full-avalanche 64-bit mix.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

}  // namespace

Fingerprint message_fingerprint(Rank src, Rank dst, Tag tag, Bytes bytes,
                                std::uint64_t salt) {
  std::uint64_t h = salt;
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ static_cast<std::uint64_t>(bytes));
  return h;
}

DeliveryLedger::EntryId DeliveryLedger::record_send(Rank src, Rank dst,
                                                    Tag tag, Bytes bytes) {
  const auto id = static_cast<EntryId>(entries_.size());
  Entry entry;
  entry.src = src;
  entry.dst = dst;
  entry.tag = tag;
  entry.bytes = bytes;
  entry.fingerprint = message_fingerprint(src, dst, tag, bytes, salt_);
  entries_.push_back(entry);
  return id;
}

void DeliveryLedger::record_retry(EntryId id) {
  AAPC_CHECK_MSG(id >= 0 && id < entry_count(),
                 "ledger retry for unknown entry " << id);
  ++entries_[static_cast<std::size_t>(id)].retries;
}

void DeliveryLedger::record_delivery(EntryId id, Rank src, Rank dst, Tag tag,
                                     Bytes bytes) {
  record_delivery_with_fingerprint(
      id, src, dst, tag, bytes,
      message_fingerprint(src, dst, tag, bytes, salt_));
}

void DeliveryLedger::record_delivery_with_fingerprint(
    EntryId id, Rank src, Rank dst, Tag tag, Bytes bytes,
    Fingerprint fingerprint) {
  AAPC_CHECK_MSG(id >= 0 && id < entry_count(),
                 "ledger delivery for unknown entry " << id);
  Entry& entry = entries_[static_cast<std::size_t>(id)];
  ++entry.deliveries;
  if (src != entry.src || dst != entry.dst || tag != entry.tag ||
      bytes != entry.bytes) {
    entry.misdelivered = true;
    return;
  }
  if (fingerprint != entry.fingerprint) entry.corrupted = true;
}

IntegrityReport DeliveryLedger::report() const {
  IntegrityReport report;
  report.expected = entry_count();
  constexpr std::size_t kMaxViolationLines = 16;
  auto violation = [&](const Entry& entry, EntryId id, const char* what) {
    if (report.violations.size() >= kMaxViolationLines) return;
    std::ostringstream os;
    os << what << ": transfer " << id << " rank " << entry.src << " -> rank "
       << entry.dst << " tag=" << entry.tag << " bytes=" << entry.bytes
       << " (delivered " << entry.deliveries << "x, " << entry.retries
       << " retries)";
    report.violations.push_back(os.str());
  };
  for (EntryId id = 0; id < entry_count(); ++id) {
    const Entry& entry = entries_[static_cast<std::size_t>(id)];
    report.delivered += entry.deliveries;
    report.retried += entry.retries;
    if (entry.deliveries == 0) {
      ++report.missing;
      violation(entry, id, "missing");
    } else if (entry.deliveries > 1) {
      ++report.duplicated;
      violation(entry, id, "duplicated");
    }
    if (entry.misdelivered) {
      ++report.misdelivered;
      violation(entry, id, "misdelivered");
    }
    if (entry.corrupted) {
      ++report.corrupted;
      violation(entry, id, "corrupted");
    }
  }
  return report;
}

std::string IntegrityReport::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "ok: " << expected << " transfer(s) delivered exactly once";
    if (retried > 0) os << " (" << retried << " watchdog retries)";
    return os.str();
  }
  os << "INTEGRITY VIOLATION: " << expected << " expected, " << delivered
     << " deliveries; missing=" << missing << " duplicated=" << duplicated
     << " corrupted=" << corrupted << " misdelivered=" << misdelivered;
  for (const std::string& line : violations) os << "\n  " << line;
  return os.str();
}

}  // namespace aapc::mpisim
