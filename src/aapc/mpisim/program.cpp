#include "aapc/mpisim/program.hpp"

#include <sstream>

namespace aapc::mpisim {

std::int32_t Program::request_count() const {
  std::int32_t count = 0;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kIsend || op.kind == OpKind::kIrecv) ++count;
  }
  return count;
}

std::string Program::to_string() const {
  std::ostringstream os;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kIsend:
        os << "isend(peer=" << op.peer << ", bytes=" << op.bytes
           << ", tag=" << op.tag << ")\n";
        break;
      case OpKind::kIrecv:
        os << "irecv(peer=" << op.peer << ", bytes=" << op.bytes
           << ", tag=" << op.tag << ")\n";
        break;
      case OpKind::kWait:
        os << "wait(" << op.request << ")\n";
        break;
      case OpKind::kWaitAll:
        os << "waitall()\n";
        break;
      case OpKind::kBarrier:
        os << "barrier()\n";
        break;
      case OpKind::kCopy:
        os << "copy(bytes=" << op.bytes << ")\n";
        break;
    }
  }
  return os.str();
}

}  // namespace aapc::mpisim
