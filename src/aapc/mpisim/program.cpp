#include "aapc/mpisim/program.hpp"

#include <sstream>

#include "aapc/common/error.hpp"

namespace aapc::mpisim {

std::int32_t Program::request_count() const {
  std::int32_t count = 0;
  for (const Op& op : ops) {
    if (op.kind == OpKind::kIsend || op.kind == OpKind::kIrecv) ++count;
  }
  return count;
}

std::string Program::to_string() const {
  std::ostringstream os;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kIsend:
        os << "isend(peer=" << op.peer << ", bytes=" << op.bytes
           << ", tag=" << op.tag << ")\n";
        break;
      case OpKind::kIrecv:
        os << "irecv(peer=" << op.peer << ", bytes=" << op.bytes
           << ", tag=" << op.tag << ")\n";
        break;
      case OpKind::kWait:
        os << "wait(" << op.request << ")\n";
        break;
      case OpKind::kWaitAll:
        os << "waitall()\n";
        break;
      case OpKind::kBarrier:
        os << "barrier()\n";
        break;
      case OpKind::kCopy:
        os << "copy(bytes=" << op.bytes << ")\n";
        break;
    }
  }
  return os.str();
}

ProgramSet relabel_program_set(const ProgramSet& set,
                               const std::vector<Rank>& perm) {
  const auto n = static_cast<Rank>(perm.size());
  AAPC_REQUIRE(set.rank_count() == n,
               "program set has " << set.rank_count() << " ranks but the "
                                  << "permutation covers " << n);
  std::vector<Rank> inverse(perm.size(), -1);
  for (Rank r = 0; r < n; ++r) {
    const Rank image = perm[static_cast<std::size_t>(r)];
    AAPC_REQUIRE(image >= 0 && image < n,
                 "permutation entry " << image << " out of range [0," << n
                                      << ")");
    AAPC_REQUIRE(inverse[static_cast<std::size_t>(image)] == -1,
                 "permutation maps two ranks to " << image);
    inverse[static_cast<std::size_t>(image)] = r;
  }
  ProgramSet out;
  out.name = set.name;
  out.programs.resize(set.programs.size());
  for (Rank r = 0; r < n; ++r) {
    const Program& source =
        set.programs[static_cast<std::size_t>(inverse[static_cast<std::size_t>(r)])];
    Program& target = out.programs[static_cast<std::size_t>(r)];
    target.ops = source.ops;
    for (Op& op : target.ops) {
      if (op.kind == OpKind::kIsend || op.kind == OpKind::kIrecv) {
        op.peer = perm[static_cast<std::size_t>(op.peer)];
      }
    }
  }
  return out;
}

}  // namespace aapc::mpisim
