#include "aapc/mpisim/network_backend.hpp"

#include "aapc/common/error.hpp"
#include "aapc/mpisim/executor.hpp"

namespace aapc::mpisim {

FluidBackend::FluidBackend(const topology::Topology& topo,
                           const simnet::NetworkParams& params)
    : params_(params), net_(topo, params) {}

SimTime FluidBackend::extra_delivery_latency(simnet::FlowId flow) const {
  return params_.per_hop_latency * net_.flow_hops(flow);
}

void FluidBackend::finish(ExecutionResult& result) const {
  result.network_stats = net_.stats();
}

PacketBackend::PacketBackend(const topology::Topology& topo,
                             const packetsim::PacketNetworkParams& params)
    : topo_(topo), net_(topo, params) {}

simnet::FlowId PacketBackend::add_flow(topology::NodeId src,
                                       topology::NodeId dst, Bytes bytes,
                                       SimTime start) {
  return static_cast<simnet::FlowId>(
      net_.add_message(topo_.rank_of(src), topo_.rank_of(dst), bytes, start));
}

void PacketBackend::advance_to(SimTime when,
                               std::vector<simnet::FlowId>& completed) {
  completed_scratch_.clear();
  net_.advance_to(when, completed_scratch_);
  for (const packetsim::PacketNetwork::MessageId id : completed_scratch_) {
    completed.push_back(static_cast<simnet::FlowId>(id));
  }
}

std::int32_t PacketBackend::flow_hops(simnet::FlowId flow) const {
  return net_.message_hops(
      static_cast<packetsim::PacketNetwork::MessageId>(flow));
}

double PacketBackend::flow_rate(simnet::FlowId flow) const {
  // The packet transports retransmit forever (RTO), so an incomplete
  // message is never permanently stuck the way a fluid flow behind a
  // down link is; report it as making progress.
  return net_.message_complete(
             static_cast<packetsim::PacketNetwork::MessageId>(flow))
             ? 0.0
             : 1.0;
}

double PacketBackend::flow_remaining(simnet::FlowId flow) const {
  return net_.message_remaining_bytes(
      static_cast<packetsim::PacketNetwork::MessageId>(flow));
}

bool PacketBackend::cancel_flow(simnet::FlowId flow) {
  return net_.cancel_message(
      static_cast<packetsim::PacketNetwork::MessageId>(flow));
}

void PacketBackend::schedule_capacity_change(SimTime, topology::LinkId,
                                             double) {
  throw InvalidArgument(
      "link-capacity fault events require the fluid backend; the packet "
      "backend models loss via PacketNetworkParams::faults instead");
}

void PacketBackend::finish(ExecutionResult& result) const {
  const packetsim::PacketResult stats = net_.result();
  result.packet.used = true;
  result.packet.segments_sent = stats.segments_sent;
  result.packet.segments_dropped = stats.segments_dropped;
  result.packet.retransmissions = stats.retransmissions;
  result.packet.segments_lost = stats.segments_lost;
  result.packet.segments_corrupted = stats.segments_corrupted;
  result.packet.peak_queue_occupancy = stats.peak_queue_occupancy;
}

}  // namespace aapc::mpisim
