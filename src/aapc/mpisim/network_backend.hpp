// NetworkBackend: the seam between the executor and the network model.
//
// The executor's job — rendezvous matching, rank clocks, watchdog,
// barriers — is independent of *how* bytes move. This interface
// abstracts the event-driven network contract the executor needs
// (add/advance/cancel, earliest event, per-flow queries) so one
// generated schedule runs end-to-end over either model:
//
//  * FluidBackend — simnet::FluidNetwork, the calibrated max-min
//    fluid-flow abstraction (fast; contention from progressive
//    filling). The default; behaviour is bit-identical to the executor
//    before this seam existed.
//  * PacketBackend — packetsim::PacketNetwork, segment-level
//    store-and-forward with finite queues, transports, and stochastic
//    loss/corruption/jitter. Slower but first-principles: this is what
//    lets the paper's scheduled alltoall (phases + pair-wise sync
//    messages) run over a genuinely lossy network.
//
// Semantics note: the fluid model charges store-and-forward delivery
// latency *after* the flow drains (per_hop_latency * hops, added by the
// backend via extra_delivery_latency), while the packet model pays
// link_latency per hop inside the simulation itself — so its
// extra_delivery_latency is 0 and nothing is double-counted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::mpisim {

struct ExecutionResult;

/// Event-driven network contract the executor drives. FlowIds are
/// backend-scoped opaque handles.
class NetworkBackend {
 public:
  virtual ~NetworkBackend() = default;

  virtual SimTime now() const = 0;
  /// Registers a transfer between machine *nodes* activating at `start`
  /// (>= now()).
  virtual simnet::FlowId add_flow(topology::NodeId src, topology::NodeId dst,
                                  Bytes bytes, SimTime start) = 0;
  /// Earliest internal event; simnet::kNever when idle.
  virtual SimTime next_event_time() const = 0;
  /// Processes events up to `when`; drained flow ids are appended.
  virtual void advance_to(SimTime when,
                          std::vector<simnet::FlowId>& completed) = 0;
  virtual std::int32_t flow_hops(simnet::FlowId flow) const = 0;
  /// 0 means the flow cannot currently make progress (fluid: stuck
  /// behind a down link). Backends whose transport always retries
  /// report nonzero for incomplete flows.
  virtual double flow_rate(simnet::FlowId flow) const = 0;
  virtual double flow_remaining(simnet::FlowId flow) const = 0;
  virtual bool cancel_flow(simnet::FlowId flow) = 0;
  /// Scripted link-capacity fault at `when` (faults::compile output).
  /// Backends without capacity modelling reject this up front.
  virtual void schedule_capacity_change(SimTime when, topology::LinkId link,
                                        double bytes_per_sec) = 0;
  /// Receive-side latency to add on top of the drain time for this
  /// flow (store-and-forward charge not already inside the model).
  virtual SimTime extra_delivery_latency(simnet::FlowId flow) const = 0;
  /// Copies backend statistics into the run result.
  virtual void finish(ExecutionResult& result) const = 0;
};

/// Max-min fluid-flow backend (simnet::FluidNetwork).
class FluidBackend final : public NetworkBackend {
 public:
  FluidBackend(const topology::Topology& topo,
               const simnet::NetworkParams& params);

  SimTime now() const override { return net_.now(); }
  simnet::FlowId add_flow(topology::NodeId src, topology::NodeId dst,
                          Bytes bytes, SimTime start) override {
    return net_.add_flow(src, dst, bytes, start);
  }
  SimTime next_event_time() const override { return net_.next_event_time(); }
  void advance_to(SimTime when,
                  std::vector<simnet::FlowId>& completed) override {
    net_.advance_to(when, completed);
  }
  std::int32_t flow_hops(simnet::FlowId flow) const override {
    return net_.flow_hops(flow);
  }
  double flow_rate(simnet::FlowId flow) const override {
    return net_.flow_rate(flow);
  }
  double flow_remaining(simnet::FlowId flow) const override {
    return net_.flow_remaining(flow);
  }
  bool cancel_flow(simnet::FlowId flow) override {
    return net_.cancel_flow(flow);
  }
  void schedule_capacity_change(SimTime when, topology::LinkId link,
                                double bytes_per_sec) override {
    net_.schedule_capacity_change(when, link, bytes_per_sec);
  }
  SimTime extra_delivery_latency(simnet::FlowId flow) const override;
  void finish(ExecutionResult& result) const override;

 private:
  simnet::NetworkParams params_;
  simnet::FluidNetwork net_;
};

/// Segment-level packet backend (packetsim::PacketNetwork). Transfers
/// pay per-hop latency (and loss, queueing, retransmission) inside the
/// packet model itself, so extra_delivery_latency is 0.
class PacketBackend final : public NetworkBackend {
 public:
  PacketBackend(const topology::Topology& topo,
                const packetsim::PacketNetworkParams& params);

  SimTime now() const override { return net_.now(); }
  simnet::FlowId add_flow(topology::NodeId src, topology::NodeId dst,
                          Bytes bytes, SimTime start) override;
  SimTime next_event_time() const override { return net_.next_event_time(); }
  void advance_to(SimTime when,
                  std::vector<simnet::FlowId>& completed) override;
  std::int32_t flow_hops(simnet::FlowId flow) const override;
  double flow_rate(simnet::FlowId flow) const override;
  double flow_remaining(simnet::FlowId flow) const override;
  bool cancel_flow(simnet::FlowId flow) override;
  [[noreturn]] void schedule_capacity_change(SimTime when,
                                             topology::LinkId link,
                                             double bytes_per_sec) override;
  SimTime extra_delivery_latency(simnet::FlowId) const override { return 0; }
  void finish(ExecutionResult& result) const override;

 private:
  const topology::Topology& topo_;
  packetsim::PacketNetwork net_;
  // Scratch for advance_to's MessageId -> FlowId widening.
  std::vector<packetsim::PacketNetwork::MessageId> completed_scratch_;
};

}  // namespace aapc::mpisim
