// Rank programs: the executable form of a communication algorithm.
//
// Every AAPC implementation in this repo — the generated routine, the
// LAM/MPI baseline, the MPICH baselines — is expressed as one static
// operation list per rank, mirroring how the paper's routine generator
// emits code built from MPI point-to-point primitives (§5). A static
// representation keeps the simulation deterministic and doubles as the
// input of the C code generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::mpisim {

using topology::Rank;

/// Message tag. Data messages use the algorithm's tag space; programs
/// built by this repo reserve kSyncTag for pair-wise synchronization.
using Tag = std::int32_t;
inline constexpr Tag kSyncTag = 1 << 20;

/// Request handle: index into the issuing rank's request table, in
/// posting order (0 = first ISEND/IRECV posted by that rank).
using RequestId = std::int32_t;

enum class OpKind : std::uint8_t {
  kIsend,    // post nonblocking send(peer, bytes, tag)
  kIrecv,    // post nonblocking recv(peer, bytes, tag)
  kWait,     // block until request `request` completes
  kWaitAll,  // block until every request posted so far completes
  kBarrier,  // block until all ranks reach their matching barrier
  kCopy,     // local memcpy of `bytes` (the rank's own AAPC block)
};

struct Op {
  OpKind kind;
  Rank peer = -1;        // kIsend/kIrecv
  Bytes bytes = 0;       // kIsend/kIrecv/kCopy
  Tag tag = 0;           // kIsend/kIrecv
  RequestId request = -1;  // kWait

  static Op isend(Rank peer, Bytes bytes, Tag tag) {
    return Op{OpKind::kIsend, peer, bytes, tag, -1};
  }
  static Op irecv(Rank peer, Bytes bytes, Tag tag) {
    return Op{OpKind::kIrecv, peer, bytes, tag, -1};
  }
  static Op wait(RequestId request) {
    return Op{OpKind::kWait, -1, 0, 0, request};
  }
  static Op wait_all() { return Op{OpKind::kWaitAll, -1, 0, 0, -1}; }
  static Op barrier() { return Op{OpKind::kBarrier, -1, 0, 0, -1}; }
  static Op copy(Bytes bytes) { return Op{OpKind::kCopy, -1, bytes, 0, -1}; }
};

/// One rank's operation list.
struct Program {
  std::vector<Op> ops;

  /// Number of requests this program posts (isend + irecv count).
  std::int32_t request_count() const;

  std::string to_string() const;
};

/// An algorithm instance: one program per rank, plus a display name.
struct ProgramSet {
  std::string name;
  std::vector<Program> programs;  // index == rank

  std::int32_t rank_count() const {
    return static_cast<std::int32_t>(programs.size());
  }
};

/// Rewrites a program set through a rank permutation: the program of rank
/// r in the result is the program of rank perm⁻¹(r) in `set`, with every
/// op's peer rank mapped through `perm`. Request ids, tags, and byte
/// counts are untouched (they are rank-local). Used by the
/// schedule-compilation service to map programs lowered on a canonical
/// topology back into the caller's rank labeling; when `perm` comes from
/// a tree isomorphism the relabeled set executes identically (same paths,
/// same contention structure).
ProgramSet relabel_program_set(const ProgramSet& set,
                               const std::vector<Rank>& perm);

}  // namespace aapc::mpisim
