// Deterministic executor: runs one Program per rank against the fluid
// network and reports completion times.
//
// Time model:
//  * each rank has a local clock; posting an ISEND/IRECV costs
//    send_overhead/recv_overhead of that rank's CPU time (serializing a
//    rank's own posts, as a real MPI stack does);
//  * a matched (send, recv) pair becomes one network flow activating at
//    max(sender post end, receiver post end) — rendezvous semantics;
//  * the send request completes when the flow drains; the receive
//    completes per_hop_latency * hops later (store-and-forward);
//  * WAIT/WAITALL resume the rank at max(rank clock, completion time);
//  * BARRIER releases all ranks at max(arrival clocks) + barrier_latency.
//
// The executor throws InvalidArgument with a per-rank state dump when the
// program set deadlocks (e.g. mismatched sends/receives).
#pragma once

#include <cstdint>
#include <vector>

#include "aapc/mpisim/program.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::mpisim {

/// One matched point-to-point transfer, for tracing/visualization.
struct MessageTrace {
  Rank src = -1;
  Rank dst = -1;
  Bytes bytes = 0;
  Tag tag = 0;
  /// Flow activation (both sides posted) and drain times.
  SimTime start = 0;
  SimTime end = 0;
  /// Receive-side completion (end + per-hop latency, small-message
  /// latency included).
  SimTime delivered = 0;
  bool is_sync = false;
};

struct ExecutionResult {
  /// Completion time of the whole operation (max over ranks).
  SimTime completion_time = 0;
  /// Per-rank finish times.
  std::vector<SimTime> rank_finish;
  /// Payload bytes moved through the network (sync messages included).
  double network_bytes = 0;
  /// Number of matched point-to-point messages.
  std::int64_t message_count = 0;
  simnet::NetworkStats network_stats;
  /// Per-message timeline; populated when ExecutorParams::record_trace.
  std::vector<MessageTrace> trace;

  /// Aggregate throughput over the run: `payload_bytes` (caller-defined,
  /// normally |M|*(|M|-1)*msize) divided by completion time.
  double aggregate_throughput(double payload_bytes) const {
    return completion_time > 0 ? payload_bytes / completion_time : 0.0;
  }
};

/// Extra knobs for the executor beyond the network model.
struct ExecutorParams {
  /// Local-copy bandwidth for kCopy ops (memcpy of the rank's own
  /// block); well above link speed on any real node.
  double memcpy_bandwidth_bytes_per_sec = 1.0e9;

  /// OS wakeup noise: every time a rank resumes from a blocking wait it
  /// pays an extra uniform [0, wakeup_jitter_max) delay, drawn from a
  /// deterministic per-rank stream (runs are exactly reproducible for a
  /// given seed). This is what desynchronizes step-based algorithms
  /// (MPICH ring/pairwise) in practice: drifted steps overlap and incur
  /// the contention the paper's pair-wise synchronization prevents. A
  /// perfectly lockstep simulation would hide that effect entirely.
  SimTime wakeup_jitter_max = milliseconds(1.0);
  std::uint64_t jitter_seed = 0xA4C5u;

  /// Record a MessageTrace per matched transfer in the result.
  bool record_trace = false;
};

class Executor {
 public:
  Executor(const topology::Topology& topo, const simnet::NetworkParams& net,
           const ExecutorParams& exec = {});

  /// Runs the program set to completion (or throws on deadlock). The
  /// program set must have exactly topo.machine_count() programs.
  ExecutionResult run(const ProgramSet& set);

 private:
  const topology::Topology& topo_;
  simnet::NetworkParams net_params_;
  ExecutorParams exec_params_;
};

}  // namespace aapc::mpisim
