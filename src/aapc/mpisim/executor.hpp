// Deterministic executor: runs one Program per rank against the fluid
// network and reports completion times.
//
// Time model:
//  * each rank has a local clock; posting an ISEND/IRECV costs
//    send_overhead/recv_overhead of that rank's CPU time (serializing a
//    rank's own posts, as a real MPI stack does);
//  * a matched (send, recv) pair becomes one network flow activating at
//    max(sender post end, receiver post end) — rendezvous semantics;
//  * the send request completes when the flow drains; the receive
//    completes per_hop_latency * hops later (store-and-forward);
//  * WAIT/WAITALL resume the rank at max(rank clock, completion time);
//  * BARRIER releases all ranks at max(arrival clocks) + barrier_latency.
//
// The executor throws ExecutionStalled (an InvalidArgument) with a
// per-rank diagnostic naming the blocked ranks and their pending
// sends/receives when the program set cannot make progress — whether
// from a plain deadlock (mismatched sends/receives) or a fault-induced
// stall (crashed rank, transfers stuck behind a down link with the
// watchdog disabled). TransferAborted reports a transfer whose
// watchdog retries were exhausted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/common/error.hpp"
#include "aapc/flight/diagnostics.hpp"
#include "aapc/mpisim/integrity.hpp"
#include "aapc/mpisim/program.hpp"
#include "aapc/packetsim/packet_network.hpp"
#include "aapc/simnet/fluid_network.hpp"
#include "aapc/simnet/params.hpp"
#include "aapc/topology/topology.hpp"

namespace aapc::obs {
class Registry;
}  // namespace aapc::obs

namespace aapc::flight {
class Recorder;
}  // namespace aapc::flight

namespace aapc::mpisim {

/// The run cannot make progress: every live rank is blocked and the
/// network has no event to deliver. Carries a typed
/// flight::StallDiagnostic naming each rank's state, its pending
/// requests, unmatched posts, and any in-flight transfer stuck at rate
/// 0 behind a down link; what() is its rendering (the same formatting
/// path flight::analyze() verdicts use). Derives from InvalidArgument
/// (a deadlocking program set is malformed input).
class ExecutionStalled : public InvalidArgument {
 public:
  explicit ExecutionStalled(flight::StallDiagnostic diagnostic)
      : InvalidArgument(diagnostic.to_string()),
        diagnostic_(std::move(diagnostic)) {}
  const flight::StallDiagnostic& diagnostic() const { return diagnostic_; }

 private:
  flight::StallDiagnostic diagnostic_;
};

/// A transfer exceeded ExecutorParams::transfer_timeout with all
/// retries exhausted (e.g. a permanently-down link); the diagnostic
/// names the endpoint ranks, tag, size, and attempt count.
class TransferAborted : public Error {
 public:
  explicit TransferAborted(flight::AbortDiagnostic diagnostic)
      : Error(diagnostic.to_string()), diagnostic_(std::move(diagnostic)) {}
  const flight::AbortDiagnostic& diagnostic() const { return diagnostic_; }

 private:
  flight::AbortDiagnostic diagnostic_;
};

/// One matched point-to-point transfer, for tracing/visualization.
struct MessageTrace {
  Rank src = -1;
  Rank dst = -1;
  Bytes bytes = 0;
  Tag tag = 0;
  /// Flow activation (both sides posted) and drain times.
  SimTime start = 0;
  SimTime end = 0;
  /// Receive-side completion (end + per-hop latency, small-message
  /// latency included).
  SimTime delivered = 0;
  bool is_sync = false;
  /// Watchdog reposts this transfer needed before draining.
  std::int32_t retries = 0;
};

/// A labeled instant on the simulated timeline — fault injections,
/// watchdog retries/aborts. Rendered as instant events in the Chrome
/// trace (trace::to_chrome_json overload).
struct FaultMarker {
  SimTime time = 0;
  std::string label;
};

/// Degraded behaviour of one rank: CPU slowdown from an onset time
/// (straggler) and/or crash-stop. A crashed rank stops executing its
/// program; the run then ends in ExecutionStalled naming it (fail-stop
/// without failure detection — in-flight transfers it already matched
/// keep draining).
struct RankFault {
  Rank rank = -1;
  /// Multiplier (>= 1) on the rank's CPU-time costs — send/recv posting
  /// overheads, local copies, wakeup jitter — from slowdown_onset on.
  double cpu_slowdown = 1.0;
  SimTime slowdown_onset = 0;
  /// Simulated time at which the rank crash-stops; kNever = healthy.
  SimTime crash_time = simnet::kNever;
};

/// Packet-model counters of a run over the packet backend (`used` stays
/// false on fluid runs).
struct PacketNetworkSummary {
  bool used = false;
  std::int64_t segments_sent = 0;
  std::int64_t segments_dropped = 0;  // queue overflow
  std::int64_t retransmissions = 0;
  std::int64_t segments_lost = 0;       // stochastic link loss
  std::int64_t segments_corrupted = 0;  // checksum discards
  std::int32_t peak_queue_occupancy = 0;
};

struct ExecutionResult {
  /// Completion time of the whole operation (max over ranks).
  SimTime completion_time = 0;
  /// Per-rank finish times.
  std::vector<SimTime> rank_finish;
  /// Payload bytes moved through the network (sync messages included).
  double network_bytes = 0;
  /// Number of matched point-to-point messages.
  std::int64_t message_count = 0;
  simnet::NetworkStats network_stats;
  /// Per-message timeline; populated when ExecutorParams::record_trace.
  std::vector<MessageTrace> trace;
  /// Transfers the watchdog timed out (each is then retried or aborted).
  std::int64_t transfer_timeouts = 0;
  /// Watchdog reposts after a timeout.
  std::int64_t transfer_retries = 0;
  /// Timeline markers, sorted by time: ExecutorParams::fault_markers
  /// plus one marker per watchdog retry.
  std::vector<FaultMarker> fault_markers;
  /// Exactly-once audit of every matched transfer (always populated;
  /// integrity.ok() must hold for a correct run).
  IntegrityReport integrity;
  /// Packet-backend counters (ExecutorParams::backend == kPacket only).
  PacketNetworkSummary packet;

  /// Aggregate throughput over the run: `payload_bytes` (caller-defined,
  /// normally |M|*(|M|-1)*msize) divided by completion time.
  double aggregate_throughput(double payload_bytes) const {
    return completion_time > 0 ? payload_bytes / completion_time : 0.0;
  }
};

/// Which network model the executor drives (see
/// mpisim/network_backend.hpp for the semantics of each).
enum class NetworkBackendKind : std::uint8_t {
  /// Calibrated max-min fluid-flow model (simnet::FluidNetwork) — the
  /// default, bit-identical to the pre-seam executor.
  kFluid,
  /// Segment-level packet model (packetsim::PacketNetwork) with finite
  /// queues, transports, and stochastic loss/corruption/jitter.
  kPacket,
};

/// Extra knobs for the executor beyond the network model.
struct ExecutorParams {
  /// Local-copy bandwidth for kCopy ops (memcpy of the rank's own
  /// block); well above link speed on any real node.
  double memcpy_bandwidth_bytes_per_sec = 1.0e9;

  /// OS wakeup noise: every time a rank resumes from a blocking wait it
  /// pays an extra uniform [0, wakeup_jitter_max) delay, drawn from a
  /// deterministic per-rank stream (runs are exactly reproducible for a
  /// given seed). This is what desynchronizes step-based algorithms
  /// (MPICH ring/pairwise) in practice: drifted steps overlap and incur
  /// the contention the paper's pair-wise synchronization prevents. A
  /// perfectly lockstep simulation would hide that effect entirely.
  SimTime wakeup_jitter_max = milliseconds(1.0);
  std::uint64_t jitter_seed = 0xA4C5u;

  /// Record a MessageTrace per matched transfer in the result.
  bool record_trace = false;

  /// Network model to run over. The fluid backend consumes the
  /// NetworkParams the executor was built with; the packet backend
  /// consumes `packet` below (capacity_events are then rejected — the
  /// packet model expresses faults via packet.faults instead).
  NetworkBackendKind backend = NetworkBackendKind::kFluid;
  /// Packet-model configuration, used when backend == kPacket.
  packetsim::PacketNetworkParams packet;

  // ---- fault injection (all defaults inert: a run with none of these
  // set is bit-identical to the pre-fault executor) ----

  /// Scripted link-capacity timeline applied to the run's network
  /// (usually faults::compile() output). Events are scheduled before
  /// the first op executes.
  std::vector<simnet::LinkCapacityEvent> capacity_events;

  /// Per-rank degradations (straggler slowdown, crash-stop).
  std::vector<RankFault> rank_faults;

  /// Markers copied into ExecutionResult::fault_markers (normally the
  /// human-readable timeline of the injected fault plan).
  std::vector<FaultMarker> fault_markers;

  /// Transfer watchdog: a matched transfer that has not drained within
  /// `transfer_timeout` of activating is canceled and reposted with
  /// exponential backoff (transfer_retry_backoff *
  /// transfer_backoff_multiplier^attempt), up to transfer_max_retries
  /// reposts; exhausting them throws TransferAborted. 0 disables the
  /// watchdog — stuck transfers then surface as ExecutionStalled.
  SimTime transfer_timeout = 0;
  std::int32_t transfer_max_retries = 3;
  SimTime transfer_retry_backoff = milliseconds(5.0);
  double transfer_backoff_multiplier = 2.0;

  /// Optional metrics sink: when set, the run exports the
  /// aapc_executor_* series (runs, messages by kind, per-transfer and
  /// sync-wait histograms, watchdog counters) plus the network model's
  /// series (aapc_simnet_* / aapc_packet_*) into this registry — see
  /// docs/OBSERVABILITY.md. nullptr (the default) records nothing and
  /// keeps the event loop on the metrics-free path.
  obs::Registry* metrics = nullptr;

  /// Optional flight recorder: when set, the run appends compact events
  /// (send/recv posts and completions, sync waits/releases, watchdog
  /// retries) to the recorder's per-rank rings — bounded memory,
  /// overwrite-oldest, a few relaxed stores per event. The recorder
  /// must cover at least the topology's machine count. nullptr (the
  /// default) records nothing and keeps the event loop bit-identical
  /// to the recorder-free executor. See docs/OBSERVABILITY.md
  /// §flight-recorder; dump with flight::snapshot() after the run (the
  /// rings stay valid when it threw) and diagnose with
  /// flight::analyze().
  flight::Recorder* flight = nullptr;
};

class Executor {
 public:
  Executor(const topology::Topology& topo, const simnet::NetworkParams& net,
           const ExecutorParams& exec = {});

  /// Runs the program set to completion (or throws on deadlock). The
  /// program set must have exactly topo.machine_count() programs.
  ExecutionResult run(const ProgramSet& set);

 private:
  const topology::Topology& topo_;
  simnet::NetworkParams net_params_;
  ExecutorParams exec_params_;
};

}  // namespace aapc::mpisim
