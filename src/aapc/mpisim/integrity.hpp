// End-to-end data-integrity ledger for executed transfers.
//
// A real MPI_Alltoall over lossy Ethernet must deliver every (src, dst)
// block exactly once, bit-intact, to the right receiver — and a buggy
// retry path (PR 2's watchdog reposts, schedule repair) could silently
// violate that without perturbing any timing. The ledger makes the
// property checkable: every matched transfer is stamped at send time
// with a deterministic payload fingerprint derived from (src, dst, tag,
// bytes, salt); at delivery the fingerprint is *recomputed from the
// receiver's own view of the transfer* and compared, so a transfer that
// was duplicated, lost, corrupted, or bound to the wrong endpoints is
// flagged — even if the simulation's timings look perfectly healthy.
//
// The ledger is pure bookkeeping: it never influences simulated time,
// so running it always-on costs nothing in fidelity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aapc/common/units.hpp"
#include "aapc/mpisim/program.hpp"

namespace aapc::mpisim {

/// Deterministic stand-in for a checksum over the transfer's payload.
/// In a real implementation this would hash the buffer; in simulation
/// the payload is fully determined by who sends what to whom, so the
/// fingerprint binds (src, dst, tag, bytes) under a salt.
using Fingerprint = std::uint64_t;

Fingerprint message_fingerprint(Rank src, Rank dst, Tag tag, Bytes bytes,
                                std::uint64_t salt);

/// Verdict of a ledger audit. `ok()` means every recorded transfer was
/// delivered exactly once with a matching fingerprint to its intended
/// receiver.
struct IntegrityReport {
  std::int64_t expected = 0;   // transfers recorded at send time
  std::int64_t delivered = 0;  // delivery records observed
  std::int64_t retried = 0;    // watchdog reposts (not violations)
  std::int64_t missing = 0;     // never delivered
  std::int64_t duplicated = 0;  // delivered more than once
  std::int64_t corrupted = 0;   // fingerprint mismatch, right endpoints
  std::int64_t misdelivered = 0;  // delivered to/from the wrong endpoints
  /// Human-readable description of each violation (capped; see
  /// `summary()`).
  std::vector<std::string> violations;

  bool ok() const {
    return missing == 0 && duplicated == 0 && corrupted == 0 &&
           misdelivered == 0;
  }
  /// One-line verdict ("ok: 42 transfers delivered exactly once" or the
  /// violation counts plus the first few violation lines).
  std::string summary() const;
};

/// Exactly-once delivery ledger. The executor records a send for every
/// matched transfer (keeping the returned EntryId in its flow binding),
/// a retry for every watchdog repost, and a delivery when the flow
/// drains; report() audits the whole run.
class DeliveryLedger {
 public:
  using EntryId = std::int64_t;

  explicit DeliveryLedger(std::uint64_t salt = 0x1ED6E5A17ull)
      : salt_(salt) {}

  /// Stamps a transfer at send time; the fingerprint binds the sender's
  /// view of (src, dst, tag, bytes).
  EntryId record_send(Rank src, Rank dst, Tag tag, Bytes bytes);

  /// A watchdog repost of the same logical transfer (not a violation —
  /// but audited: the retry must still deliver exactly once).
  void record_retry(EntryId id);

  /// Records a delivery observed by the receiver, described by the
  /// *receiver's* view of the transfer. The fingerprint is recomputed
  /// from these fields and compared against the stamp, catching
  /// corrupted payloads and transfers bound to the wrong request pair.
  void record_delivery(EntryId id, Rank src, Rank dst, Tag tag, Bytes bytes);

  /// Test seam: records a delivery with an explicit fingerprint instead
  /// of recomputing it (injects corruption), or a repeated delivery
  /// (injects duplication).
  void record_delivery_with_fingerprint(EntryId id, Rank src, Rank dst,
                                        Tag tag, Bytes bytes,
                                        Fingerprint fingerprint);

  std::int64_t entry_count() const {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// Audits the ledger: every entry must have exactly one delivery with
  /// a matching fingerprint and matching endpoints.
  IntegrityReport report() const;

 private:
  struct Entry {
    Rank src = -1;
    Rank dst = -1;
    Tag tag = 0;
    Bytes bytes = 0;
    Fingerprint fingerprint = 0;
    std::int32_t deliveries = 0;
    std::int32_t retries = 0;
    bool corrupted = false;
    bool misdelivered = false;
  };

  std::uint64_t salt_;
  std::vector<Entry> entries_;
};

}  // namespace aapc::mpisim
